"""Pluggable blockmodel storage engines — the ``BlockState`` protocol.

The inference path never needs a dense ``(C, C)`` matrix per se; it needs
a small contract of reads and O(change) mutations:

* scalar cell reads and batched row/column/elementwise **gathers** (the
  delta-MDL and Hastings kernels in :mod:`repro.sbm.delta` and
  :mod:`repro.parallel.vectorized`),
* a **compressed symmetrized-row CDF view** for the multinomial proposal
  draws (:mod:`repro.sbm.moves`),
* a row-major **non-zero triplet view** for the batch merge kernels,
* an O(degree) **single-move update** (serial Metropolis),
* a batch **sweep delta-apply** (the A-SBP barrier,
  :mod:`repro.sbm.incremental`),
* **merge**, **compact** and **rebuild-from-edges** transitions (Alg. 1
  and the agglomerative outer loop),
* **densify** for MDL evaluation and serialization.

This module defines that contract (:class:`BlockState`), a registry
(:func:`register_block_storage` / :func:`get_block_storage`) and the two
built-in engines:

``dense``
    The original contiguous int64 matrix, retained as the oracle. Its
    :attr:`~DenseBlockState.B` attribute is the *live* array, so legacy
    code (and tests) that read or poke ``bm.B`` keep working unchanged.
``sparse``
    Numpy-native per-row sorted ``(cols, vals)`` arrays with a mirrored
    per-column index, replacing the dict-of-dicts prototype in
    :mod:`repro.sbm.sparse` so gathers stay vectorized. A lazy flattened
    CSR view (sorted ``r * C + c`` keys) serves frozen-state batch
    gathers and the merge kernels; it is invalidated by any mutation and
    never consulted on the serial per-move path, which uses only the
    per-row/per-column arrays.
``hybrid``
    A sweep-burst engine layered over a sparse backing store: an LRU of
    materialized dense rows/columns for high-traffic blocks plus a
    write-behind cell-delta journal. CDF/row reads hit the dense cache
    lines (dense-identity :class:`RowCDF`, so draws are byte-equal to
    the oracle), ``apply_move``/``scatter_edges`` append journal chunks
    and write through cached lines in O(deg), and whole-matrix reads,
    ``merge_into`` and ``compact`` flush the journal and reuse the
    sparse paths. Per-line version counters let
    :class:`repro.sbm.incremental.ProposalCache` revalidate lazily
    instead of evicting the whole move dirty set.

The ``auto`` policy (:func:`resolve_block_storage`) is not an engine:
it resolves to ``dense`` or ``hybrid`` from (C, density, memory budget)
before any state is built, so config digests record the decision.

Bit-identical equivalence
-------------------------
Every read the kernels perform returns the same int64 values from either
engine, and three theorems extend that to *byte-equal trajectories*
(asserted by ``tests/test_storage_equivalence.py`` and the sparse leg of
the golden-trajectory gate):

1. **Integer-CDF plateau**: for an integer CDF, ``searchsorted(cdf,
   floor(u * total), side="right")`` can never land on a zero-weight
   plateau, so the compressed non-zero CDF of :meth:`BlockState.
   sym_row_cdf` draws the same block as the dense row scan.
2. **+0.0 is an IEEE no-op**: delta-MDL terms for untouched cells are
   exactly ``+0.0`` and never ``-0.0``, so summing over sparse support
   only reproduces the dense sum bit-for-bit (the ``_seq_sum``
   discipline of :mod:`repro.sbm.delta`).
3. **Dense MDL materialization**: ``np.sum`` uses *pairwise* summation
   over the flattened dense matrix, whose rounding depends on the zero
   cells' positions. :meth:`BlockState.likelihood_matrix` therefore
   hands the entropy kernel a dense int64 matrix from either engine —
   the sparse engine materializes one per evaluation — keeping MDL
   traces byte-equal to the dense oracle.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import OrderedDict

import numpy as np

from repro.errors import BackendError, BlockmodelError
from repro.sbm import kernels as _K
from repro.types import IntArray

__all__ = [
    "RowCDF",
    "BlockState",
    "DenseBlockState",
    "SparseBlockState",
    "HybridBlockState",
    "register_block_storage",
    "get_block_storage",
    "available_block_storages",
    "resolve_block_storage",
    "AUTO_STORAGE",
    "STORAGE_BUDGET_ENV",
]

_EMPTY = np.empty(0, dtype=np.int64)


class RowCDF:
    """A symmetrized-row prefix-sum ready for inverse-CDF draws.

    ``cols is None`` marks a dense identity view: the CDF covers every
    block and the searchsorted index *is* the block id. A compressed view
    lists only the non-zero weights' block ids in ``cols``; by the
    integer-CDF plateau theorem both resolve every draw to the same
    block.
    """

    __slots__ = ("cols", "cdf")

    def __init__(self, cols: IntArray | None, cdf: IntArray) -> None:
        self.cols = cols
        self.cdf = cdf

    @property
    def total(self) -> int:
        """Sum of all weights (the CDF's last entry)."""
        return int(self.cdf[-1]) if self.cdf.size else 0

    def draw(self, uniform: float, fallback: int) -> int:
        """Floor-and-clamp inverse-CDF draw; ``fallback`` on a zero row.

        Matches ``repro.sbm.moves._cdf_draw`` exactly: the float draw
        ``uniform * total`` is floored (identical for u in [0, 1)) and
        clamped to ``total - 1`` (the u == 1.0 boundary).
        """
        total = self.total
        if total <= 0:
            return fallback
        q = min(int(uniform * total), total - 1)
        idx = int(_K.cdf_index(self.cdf, q))
        return idx if self.cols is None else int(self.cols[idx])

    def draw_many(self, uniforms: np.ndarray) -> IntArray:
        """Vectorized :meth:`draw` for a strictly positive total."""
        total = self.total
        draws = (uniforms * total).astype(np.int64)
        np.minimum(draws, total - 1, out=draws)
        idx = np.searchsorted(self.cdf, draws, side="right")
        if self.cols is None:
            return idx.astype(np.int64)
        return self.cols[idx]


class BlockState(ABC):
    """Storage contract for the inter-block edge-count matrix.

    All values are int64 edge counts; ``get(r, c)`` is the cell the
    dense oracle calls ``B[r, c]``. Mutators must keep every count
    non-negative (a negative count means the caller's delta accounting
    is wrong) and must leave subsequent reads exactly equal to the dense
    engine's after the same call sequence.
    """

    name: str = "abstract"
    num_blocks: int

    #: Engines that bump a per-block version counter on every write set
    #: this True and implement :meth:`line_version`; caches keyed on a
    #: block's symmetrized row can then revalidate lazily instead of
    #: being evicted eagerly after every accepted move.
    tracks_line_versions: bool = False

    def line_version(self, u: int) -> int:
        """Monotonic write counter for block ``u``'s row+column lines."""
        raise NotImplementedError(f"{self.name} storage has no line versions")

    # -- reads ----------------------------------------------------------
    @abstractmethod
    def get(self, r: int, c: int) -> int:
        """Scalar cell read ``B[r, c]``."""

    @abstractmethod
    def row_gather(self, r: int, cols: IntArray) -> IntArray:
        """Batched row read ``B[r, cols]`` (fresh array)."""

    @abstractmethod
    def col_gather(self, c: int, rows: IntArray) -> IntArray:
        """Batched column read ``B[rows, c]`` (fresh array)."""

    @abstractmethod
    def gather(self, rows: IntArray, cols: IntArray) -> IntArray:
        """Elementwise read ``B[rows[i], cols[i]]`` (fresh array)."""

    @abstractmethod
    def dense_row(self, r: int) -> IntArray:
        """Row ``r`` as a dense length-C vector (fresh array)."""

    @abstractmethod
    def dense_col(self, c: int) -> IntArray:
        """Column ``c`` as a dense length-C vector (fresh array)."""

    @abstractmethod
    def diagonal(self) -> IntArray:
        """The diagonal ``B[i, i]`` as a length-C vector (fresh array)."""

    @abstractmethod
    def sym_row_cdf(self, u: int) -> RowCDF:
        """Prefix-sum CDF of the symmetrized row ``B[u, :] + B[:, u]``."""

    @abstractmethod
    def nonzero(self) -> tuple[IntArray, IntArray, IntArray]:
        """Non-zero triplets ``(rows, cols, vals)`` in row-major order.

        The same ordering ``np.nonzero`` gives on the dense matrix —
        the batch merge kernels rely on it for their sequential
        accumulation discipline.
        """

    @abstractmethod
    def row_sums(self) -> IntArray:
        """Per-row totals (the out-degree vector)."""

    @abstractmethod
    def col_sums(self) -> IntArray:
        """Per-column totals (the in-degree vector)."""

    @abstractmethod
    def to_dense(self) -> np.ndarray:
        """A dense int64 copy of the matrix."""

    @abstractmethod
    def likelihood_matrix(self) -> np.ndarray:
        """Dense int64 matrix for MDL evaluation.

        The entropy kernel's ``np.sum`` pairwise summation over the
        flattened dense matrix is part of the bit-identity contract, so
        even sparse engines hand it a dense materialization (the dense
        engine returns its live array, no copy).
        """

    # -- mutations ------------------------------------------------------
    @abstractmethod
    def apply_move(
        self,
        r: int,
        s: int,
        t_out: IntArray,
        c_out: IntArray,
        t_in: IntArray,
        c_in: IntArray,
        loops: int,
    ) -> None:
        """Move one vertex's incident counts from block ``r`` to ``s``.

        Arguments mirror :meth:`repro.sbm.blockmodel.Blockmodel.
        apply_move` (degree vectors live in the blockmodel, not here).
        """

    @abstractmethod
    def scatter_edges(
        self,
        old_src: IntArray,
        old_dst: IntArray,
        new_src: IntArray,
        new_dst: IntArray,
    ) -> None:
        """Batch sweep delta-apply: ``-1`` at old pairs, ``+1`` at new."""

    @abstractmethod
    def merge_into(self, r: int, s: int) -> None:
        """Fold row/column ``r`` into ``s`` and zero block ``r``."""

    @abstractmethod
    def compact(self, keep: IntArray, mapping: IntArray) -> "BlockState":
        """A new state keeping blocks ``keep``, relabeled by ``mapping``."""

    @abstractmethod
    def copy(self) -> "BlockState":
        """An independent deep copy."""

    # -- construction ---------------------------------------------------
    @classmethod
    @abstractmethod
    def from_edges(
        cls, src_blocks: IntArray, dst_blocks: IntArray, num_blocks: int
    ) -> "BlockState":
        """Count block-pair edges from aligned endpoint-block arrays."""

    @classmethod
    @abstractmethod
    def from_dense(cls, dense: np.ndarray) -> "BlockState":
        """Build from a dense int64 matrix (serialization round-trip)."""

    # -- observability --------------------------------------------------
    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of non-zero cells."""

    @property
    def density(self) -> float:
        """``nnz / C^2`` (0 for an empty matrix)."""
        c = self.num_blocks
        return float(self.nnz) / float(c * c) if c else 0.0

    @property
    @abstractmethod
    def total(self) -> int:
        """Sum of all counts (the number of edges)."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate resident bytes of the storage structure."""

    def equals_dense(self, dense: np.ndarray) -> bool:
        """Exact comparison against a dense reference matrix."""
        return bool(np.array_equal(self.to_dense(), dense))


# ----------------------------------------------------------------------
# Dense engine (the oracle)
# ----------------------------------------------------------------------
class DenseBlockState(BlockState):
    """Contiguous ``(C, C)`` int64 matrix — the original storage.

    ``B`` is the live array (not a copy): legacy call sites and tests
    that mutate ``bm.B`` in place observe and affect this engine's real
    state, exactly as before the refactor.
    """

    name = "dense"

    __slots__ = ("B", "num_blocks")

    def __init__(self, B: np.ndarray) -> None:
        B = np.asarray(B, dtype=np.int64)
        if B.ndim != 2 or B.shape[0] != B.shape[1]:
            raise BlockmodelError(f"B must be square, got shape {B.shape}")
        self.B = B
        self.num_blocks = int(B.shape[0])

    # -- reads ----------------------------------------------------------
    def get(self, r: int, c: int) -> int:
        return int(self.B[r, c])

    def row_gather(self, r: int, cols: IntArray) -> IntArray:
        return self.B[r, cols]

    def col_gather(self, c: int, rows: IntArray) -> IntArray:
        return self.B[rows, c]

    def gather(self, rows: IntArray, cols: IntArray) -> IntArray:
        return self.B[rows, cols]

    def dense_row(self, r: int) -> IntArray:
        return self.B[r, :].copy()

    def dense_col(self, c: int) -> IntArray:
        return self.B[:, c].copy()

    def diagonal(self) -> IntArray:
        return np.diagonal(self.B).copy()

    def sym_row_cdf(self, u: int) -> RowCDF:
        return RowCDF(None, _K.sym_cdf_dense(self.B, u))

    def nonzero(self) -> tuple[IntArray, IntArray, IntArray]:
        rows, cols = np.nonzero(self.B)
        return rows.astype(np.int64), cols.astype(np.int64), self.B[rows, cols]

    def row_sums(self) -> IntArray:
        return self.B.sum(axis=1)

    def col_sums(self) -> IntArray:
        return self.B.sum(axis=0)

    def to_dense(self) -> np.ndarray:
        return self.B.copy()

    def likelihood_matrix(self) -> np.ndarray:
        return self.B

    # -- mutations ------------------------------------------------------
    def apply_move(self, r, s, t_out, c_out, t_in, c_in, loops) -> None:
        _K.apply_move_dense(self.B, r, s, t_out, c_out, t_in, c_in, loops)

    def scatter_edges(self, old_src, old_dst, new_src, new_dst) -> None:
        _K.scatter_dense(self.B, old_src, old_dst, new_src, new_dst)

    def merge_into(self, r: int, s: int) -> None:
        B = self.B
        B[s, :] += B[r, :]
        B[:, s] += B[:, r]
        # B[r, r] was added to B[s, r] then B[s, r] into B[s, s]; the two
        # full-row/col adds above handle all cross terms, then we zero r.
        B[r, :] = 0
        B[:, r] = 0

    def compact(self, keep: IntArray, mapping: IntArray) -> "DenseBlockState":
        return DenseBlockState(np.ascontiguousarray(self.B[np.ix_(keep, keep)]))

    def copy(self) -> "DenseBlockState":
        return DenseBlockState(self.B.copy())

    # -- construction ---------------------------------------------------
    @classmethod
    def from_edges(cls, src_blocks, dst_blocks, num_blocks) -> "DenseBlockState":
        B = np.zeros((num_blocks, num_blocks), dtype=np.int64)
        if len(src_blocks):
            np.add.at(B, (src_blocks, dst_blocks), 1)
        return cls(B)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DenseBlockState":
        return cls(np.asarray(dense, dtype=np.int64).copy())

    # -- observability --------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.B))

    @property
    def total(self) -> int:
        return int(self.B.sum())

    def memory_bytes(self) -> int:
        return int(self.B.nbytes)

    def equals_dense(self, dense: np.ndarray) -> bool:
        return bool(np.array_equal(self.B, dense))


# ----------------------------------------------------------------------
# Sparse engine
# ----------------------------------------------------------------------
class SparseBlockState(BlockState):
    """Per-row sorted ``(cols, vals)`` arrays with a mirrored column index.

    Row ``r``'s non-zeros live in ``_row_cols[r]`` (sorted, unique) and
    ``_row_vals[r]`` (strictly positive); ``_col_rows``/``_col_vals``
    mirror by column for O(nnz(col)) column gathers. A lazily built flat
    CSR view (keys ``r * C + c`` in ascending order) serves whole-matrix
    reads (:meth:`gather`, :meth:`nonzero`, sums); any mutation drops it.
    The serial per-move path touches only the per-row/per-column arrays,
    so interleaved propose/apply sequences never pay a flat rebuild.
    """

    name = "sparse"

    __slots__ = ("num_blocks", "_row_cols", "_row_vals", "_col_rows",
                 "_col_vals", "_flat")

    def __init__(self, num_blocks: int) -> None:
        self.num_blocks = int(num_blocks)
        self._row_cols: list[IntArray] = [_EMPTY] * self.num_blocks
        self._row_vals: list[IntArray] = [_EMPTY] * self.num_blocks
        self._col_rows: list[IntArray] = [_EMPTY] * self.num_blocks
        self._col_vals: list[IntArray] = [_EMPTY] * self.num_blocks
        self._flat: tuple[IntArray, IntArray, IntArray, IntArray] | None = None

    # -- flat CSR cache -------------------------------------------------
    def _ensure_flat(self) -> tuple[IntArray, IntArray, IntArray, IntArray]:
        if self._flat is None:
            C = self.num_blocks
            lengths = np.fromiter(
                (a.shape[0] for a in self._row_cols), dtype=np.int64, count=C
            )
            if int(lengths.sum()) == 0:
                flat = (_EMPTY, _EMPTY, _EMPTY, _EMPTY)
            else:
                rows = np.repeat(np.arange(C, dtype=np.int64), lengths)
                cols = np.concatenate(self._row_cols)
                vals = np.concatenate(self._row_vals)
                flat = (rows * C + cols, rows, cols, vals)
            self._flat = flat
        return self._flat

    # -- reads ----------------------------------------------------------
    def get(self, r: int, c: int) -> int:
        cols = self._row_cols[r]
        pos = int(np.searchsorted(cols, c))
        if pos < cols.shape[0] and cols[pos] == c:
            return int(self._row_vals[r][pos])
        return 0

    @staticmethod
    def _axis_gather(keys: IntArray, vals: IntArray, wanted: IntArray) -> IntArray:
        wanted = np.asarray(wanted, dtype=np.int64)
        out = np.zeros(wanted.shape, dtype=np.int64)
        if keys.shape[0] and wanted.size:
            pos = np.minimum(np.searchsorted(keys, wanted), keys.shape[0] - 1)
            hit = keys[pos] == wanted
            out[hit] = vals[pos[hit]]
        return out

    def row_gather(self, r: int, cols: IntArray) -> IntArray:
        return self._axis_gather(self._row_cols[r], self._row_vals[r], cols)

    def col_gather(self, c: int, rows: IntArray) -> IntArray:
        return self._axis_gather(self._col_rows[c], self._col_vals[c], rows)

    def gather(self, rows: IntArray, cols: IntArray) -> IntArray:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        keys, _, _, vals = self._ensure_flat()
        return self._axis_gather(keys, vals, rows * self.num_blocks + cols)

    def dense_row(self, r: int) -> IntArray:
        out = np.zeros(self.num_blocks, dtype=np.int64)
        out[self._row_cols[r]] = self._row_vals[r]
        return out

    def dense_col(self, c: int) -> IntArray:
        out = np.zeros(self.num_blocks, dtype=np.int64)
        out[self._col_rows[c]] = self._col_vals[c]
        return out

    def diagonal(self) -> IntArray:
        idx = np.arange(self.num_blocks, dtype=np.int64)
        return self.gather(idx, idx)

    def sym_row_cdf(self, u: int) -> RowCDF:
        rc, rv = self._row_cols[u], self._row_vals[u]
        cc, cv = self._col_rows[u], self._col_vals[u]
        if cc.shape[0] == 0:
            cols, weights = rc, rv
        elif rc.shape[0] == 0:
            cols, weights = cc, cv
        else:
            cols = np.union1d(rc, cc)
            weights = np.zeros(cols.shape[0], dtype=np.int64)
            weights[np.searchsorted(cols, rc)] += rv
            weights[np.searchsorted(cols, cc)] += cv
        return RowCDF(cols, np.cumsum(weights))

    def nonzero(self) -> tuple[IntArray, IntArray, IntArray]:
        _, rows, cols, vals = self._ensure_flat()
        return rows, cols, vals

    def row_sums(self) -> IntArray:
        _, rows, _, vals = self._ensure_flat()
        out = np.zeros(self.num_blocks, dtype=np.int64)
        np.add.at(out, rows, vals)
        return out

    def col_sums(self) -> IntArray:
        _, _, cols, vals = self._ensure_flat()
        out = np.zeros(self.num_blocks, dtype=np.int64)
        np.add.at(out, cols, vals)
        return out

    def to_dense(self) -> np.ndarray:
        _, rows, cols, vals = self._ensure_flat()
        out = np.zeros((self.num_blocks, self.num_blocks), dtype=np.int64)
        out[rows, cols] = vals
        return out

    def likelihood_matrix(self) -> np.ndarray:
        return self.to_dense()

    # -- mutations ------------------------------------------------------
    def _apply_cell_deltas(self, keys: IntArray, deltas: IntArray) -> None:
        """Aggregate ``(key, delta)`` pairs and merge them into both axes.

        ``keys`` are flat ``r * C + c`` indices (duplicates allowed);
        zero aggregate deltas drop out, so the per-row update loops run
        over genuinely changed rows/columns only.
        """
        ukeys, inv = np.unique(keys, return_inverse=True)
        agg = np.zeros(ukeys.shape[0], dtype=np.int64)
        np.add.at(agg, inv, deltas)
        live = agg != 0
        if not live.any():
            return
        ukeys = ukeys[live]
        agg = agg[live]
        C = self.num_blocks
        rows = ukeys // C
        cols = ukeys % C
        self._flat = None
        # Row axis: ukeys is (row, col)-sorted, so contiguous row groups.
        bounds = np.nonzero(np.diff(rows))[0] + 1
        starts = np.concatenate([[0], bounds, [rows.shape[0]]])
        for gi in range(starts.shape[0] - 1):
            lo, hi = int(starts[gi]), int(starts[gi + 1])
            self._merge_axis(
                self._row_cols, self._row_vals, int(rows[lo]),
                cols[lo:hi], agg[lo:hi],
            )
        # Column axis mirror: re-sort by (col, row).
        order = np.argsort(cols * C + rows, kind="stable")
        rows_t = rows[order]
        cols_t = cols[order]
        agg_t = agg[order]
        bounds = np.nonzero(np.diff(cols_t))[0] + 1
        starts = np.concatenate([[0], bounds, [cols_t.shape[0]]])
        for gi in range(starts.shape[0] - 1):
            lo, hi = int(starts[gi]), int(starts[gi + 1])
            self._merge_axis(
                self._col_rows, self._col_vals, int(cols_t[lo]),
                rows_t[lo:hi], agg_t[lo:hi],
            )

    def _merge_axis(
        self,
        keys_store: list[IntArray],
        vals_store: list[IntArray],
        index: int,
        keys: IntArray,
        deltas: IntArray,
    ) -> None:
        """Merge sorted unique ``(keys, deltas)`` into one axis line."""
        cols = keys_store[index]
        vals = vals_store[index]
        if cols.shape[0] == 0:
            if (deltas < 0).any():
                raise BlockmodelError(
                    f"negative count in {self.name} storage line {index}"
                )
            keys_store[index] = keys.copy()
            vals_store[index] = deltas.copy()
            return
        pos = np.searchsorted(cols, keys)
        hit = (pos < cols.shape[0]) & (cols[np.minimum(pos, cols.shape[0] - 1)] == keys)
        new_vals = vals.copy()
        new_vals[pos[hit]] += deltas[hit]
        miss = ~hit
        if miss.any():
            new_cols = np.insert(cols, pos[miss], keys[miss])
            new_vals = np.insert(new_vals, pos[miss], deltas[miss])
        else:
            new_cols = cols
        if (new_vals < 0).any():
            raise BlockmodelError(
                f"negative count in {self.name} storage line {index}"
            )
        drop = new_vals == 0
        if drop.any():
            keep = ~drop
            new_cols = new_cols[keep]
            new_vals = new_vals[keep]
        keys_store[index] = new_cols
        vals_store[index] = new_vals

    def apply_move(self, r, s, t_out, c_out, t_in, c_in, loops) -> None:
        C = self.num_blocks
        parts_k = [r * C + t_out, s * C + t_out, t_in * C + r, t_in * C + s]
        parts_d = [-c_out, c_out, -c_in, c_in]
        if loops:
            diag = np.asarray([r * C + r, s * C + s], dtype=np.int64)
            parts_k.append(diag)
            parts_d.append(np.asarray([-loops, loops], dtype=np.int64))
        keys = np.concatenate(parts_k)
        if keys.size == 0:
            return
        self._apply_cell_deltas(keys, np.concatenate(parts_d))

    def scatter_edges(self, old_src, old_dst, new_src, new_dst) -> None:
        C = self.num_blocks
        keys = np.concatenate([old_src * C + old_dst, new_src * C + new_dst])
        if keys.size == 0:
            return
        deltas = np.concatenate([
            np.full(len(old_src), -1, dtype=np.int64),
            np.full(len(new_src), 1, dtype=np.int64),
        ])
        self._apply_cell_deltas(keys, deltas)

    def merge_into(self, r: int, s: int) -> None:
        C = self.num_blocks
        rc, rv = self._row_cols[r], self._row_vals[r]
        cc, cv = self._col_rows[r], self._col_vals[r]
        off_diag = cc != r  # the (r, r) cell is already in the row view
        cc, cv = cc[off_diag], cv[off_diag]
        if rc.shape[0] == 0 and cc.shape[0] == 0:
            return
        # Row r cells (r, t) move to (s, t) — the diagonal to (s, s);
        # column r cells (t, r) move to (t, s).
        keys = np.concatenate([
            r * C + rc,
            s * C + np.where(rc == r, s, rc),
            cc * C + r,
            cc * C + s,
        ])
        deltas = np.concatenate([-rv, rv, -cv, cv])
        self._apply_cell_deltas(keys, deltas)

    def compact(self, keep: IntArray, mapping: IntArray) -> "SparseBlockState":
        _, rows, cols, vals = self._ensure_flat()
        new_rows = mapping[rows]
        new_cols = mapping[cols]
        live = (new_rows >= 0) & (new_cols >= 0)
        return self._from_triplets(
            new_rows[live], new_cols[live], vals[live], int(keep.shape[0])
        )

    def copy(self) -> "SparseBlockState":
        out = SparseBlockState(self.num_blocks)
        out._row_cols = [a.copy() for a in self._row_cols]
        out._row_vals = [a.copy() for a in self._row_vals]
        out._col_rows = [a.copy() for a in self._col_rows]
        out._col_vals = [a.copy() for a in self._col_vals]
        return out

    # -- construction ---------------------------------------------------
    @classmethod
    def _from_triplets(
        cls, rows: IntArray, cols: IntArray, vals: IntArray, num_blocks: int
    ) -> "SparseBlockState":
        """Build from triplets with possible duplicate ``(row, col)`` keys."""
        state = cls(num_blocks)
        if len(rows) == 0:
            return state
        keys = np.asarray(rows, dtype=np.int64) * num_blocks + np.asarray(
            cols, dtype=np.int64
        )
        ukeys, inv = np.unique(keys, return_inverse=True)
        agg = np.zeros(ukeys.shape[0], dtype=np.int64)
        np.add.at(agg, inv, vals)
        live = agg > 0
        ukeys = ukeys[live]
        agg = agg[live]
        if (np.asarray(vals) < 0).any() and (agg < 0).any():
            raise BlockmodelError("negative aggregate count in triplets")
        urows = ukeys // num_blocks
        ucols = ukeys % num_blocks
        state._fill_axis(state._row_cols, state._row_vals, urows, ucols, agg)
        order = np.argsort(ucols * num_blocks + urows, kind="stable")
        state._fill_axis(
            state._col_rows, state._col_vals,
            ucols[order], urows[order], agg[order],
        )
        return state

    @staticmethod
    def _fill_axis(
        keys_store: list[IntArray],
        vals_store: list[IntArray],
        lines: IntArray,
        keys: IntArray,
        vals: IntArray,
    ) -> None:
        """Split line-sorted triplets into per-line arrays (views)."""
        if lines.shape[0] == 0:
            return
        bounds = np.nonzero(np.diff(lines))[0] + 1
        starts = np.concatenate([[0], bounds, [lines.shape[0]]])
        for gi in range(starts.shape[0] - 1):
            lo, hi = int(starts[gi]), int(starts[gi + 1])
            line = int(lines[lo])
            keys_store[line] = keys[lo:hi]
            vals_store[line] = vals[lo:hi]

    @classmethod
    def from_edges(cls, src_blocks, dst_blocks, num_blocks) -> "SparseBlockState":
        src_blocks = np.asarray(src_blocks, dtype=np.int64)
        dst_blocks = np.asarray(dst_blocks, dtype=np.int64)
        ones = np.ones(src_blocks.shape[0], dtype=np.int64)
        return cls._from_triplets(src_blocks, dst_blocks, ones, num_blocks)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseBlockState":
        dense = np.asarray(dense, dtype=np.int64)
        if (dense < 0).any():
            raise BlockmodelError("dense matrix has negative counts")
        rows, cols = np.nonzero(dense)
        return cls._from_triplets(
            rows.astype(np.int64), cols.astype(np.int64),
            dense[rows, cols], int(dense.shape[0]),
        )

    # -- observability --------------------------------------------------
    @property
    def nnz(self) -> int:
        keys, _, _, _ = self._ensure_flat()
        return int(keys.shape[0])

    @property
    def total(self) -> int:
        _, _, _, vals = self._ensure_flat()
        return int(vals.sum())

    def memory_bytes(self) -> int:
        """Resident bytes: line buffers, capacity slack, and the flat cache.

        Per-line arrays are frequently *views* into a larger build-time
        buffer (:meth:`_fill_axis` slices one concatenated array per
        axis), so summing view ``nbytes`` undercounts what the process
        actually retains. This walks each array to its base buffer and
        counts every distinct base exactly once — which also charges the
        per-row capacity slack (base cells no live view exposes). The
        lazy flat-CSR cache is included the same way whenever it is
        materialized, and the per-array constant (~112 bytes of ndarray
        header) dominates for very sparse large-C states, so it is
        included rather than hidden — the crossover benchmark compares
        *honest* footprints.
        """
        per_array_overhead = 112
        bases: dict[int, int] = {}
        count = 0
        stores: list = [self._row_cols, self._row_vals,
                        self._col_rows, self._col_vals]
        if self._flat is not None:
            stores.append(self._flat)
        for store in stores:
            for arr in store:
                if not arr.shape[0]:
                    continue
                count += 1
                base = arr
                while base.base is not None:
                    base = base.base
                bases[id(base)] = int(base.nbytes)
        list_slots = 4 * self.num_blocks * 8
        return sum(bases.values()) + count * per_array_overhead + list_slots


# ----------------------------------------------------------------------
# Hybrid engine: LRU dense lines + write-behind journal over sparse
# ----------------------------------------------------------------------
#: Consolidate a hybrid journal axis once it holds this many batches:
#: miss replay binary-searches every batch, so the list must stay short.
_MAX_JOURNAL_BATCHES = 4


class HybridBlockState(BlockState):
    """Sweep-burst engine: dense LRU line cache over a sparse backing.

    The sparse engine owns the authoritative compressed matrix, but its
    per-move ``np.insert`` merges are the sweep-burst bottleneck. This
    engine sits in front of it with three structures:

    * **LRU line caches** — up to :attr:`cache_lines` materialized dense
      rows and as many columns, stored as rows of one 2-D buffer per
      axis with an O(1) line → slot lookup array. ``sym_row_cdf`` on a
      cached block is two O(C) adds and a prefix sum, i.e. the dense
      oracle's exact arithmetic, so the returned :class:`RowCDF` is the
      dense-identity form and draws are byte-equal by construction.
    * **write-behind journal** — ``apply_move``/``scatter_edges`` append
      one line-sorted ``(lines, keys, deltas)`` batch per axis instead
      of merging into the sparse arrays, and write through every cached
      cell of the batch with a single ``np.add.at`` on the 2-D buffer
      (the slot array turns "which of these lines are cached" into one
      fancy index — no per-line Python loop on the write path).
      Whole-matrix reads, merges, compaction, copies and serialization
      flush the journal through the sparse engine's aggregation path
      (which also performs the deferred negative-count audit).
    * **per-block version counters** — bumped for every line a write
      touches, letting :class:`repro.sbm.incremental.ProposalCache`
      revalidate CDFs row-granularly instead of evicting the whole
      ``{r,s} ∪ t_out ∪ t_in`` dirty set.

    A cache miss replays the missed line's pending journal entries on
    top of the backing row — each batch is line-sorted, so replay is a
    binary search per batch, and the batch list is consolidated into a
    single sorted batch whenever it exceeds
    :data:`_MAX_JOURNAL_BATCHES` (amortized vectorized argsort, keeping
    per-miss replay O(log) regardless of how many small per-move writes
    accumulated). Reads therefore never require a flush. With the
    default budget (``max(256, C // 16)`` lines per axis) the buffers
    top out at ``2 · cache_lines · C · 8`` bytes — 12.5% of the dense
    matrix at C ≥ 4096.

    All journaled quantities are int64 edge-count deltas, so replay and
    write-through order cannot affect the resulting cells; bit-identity
    with the dense oracle needs no float reasoning on this path.
    """

    name = "hybrid"

    __slots__ = ("num_blocks", "_backing", "cache_lines",
                 "_row_lru", "_col_lru", "_row_slots", "_col_slots",
                 "_row_buf", "_col_buf", "_row_resident", "_col_resident",
                 "_jrow", "_jcol", "_pending",
                 "_flush_threshold", "_versions")

    def __init__(
        self, backing: SparseBlockState, cache_lines: int | None = None
    ) -> None:
        if not isinstance(backing, SparseBlockState):
            raise BlockmodelError(
                "hybrid storage wraps a SparseBlockState backing, got "
                f"{type(backing).__name__}"
            )
        self._backing = backing
        self.num_blocks = backing.num_blocks
        if cache_lines is None:
            cache_lines = max(256, self.num_blocks // 16)
        # A cache larger than the matrix is just the matrix.
        self.cache_lines = min(int(cache_lines), self.num_blocks)
        # True once _prefill_axis made every line of the axis resident
        # at slot == line; reads then skip the LRU machinery entirely.
        self._row_resident = False
        self._col_resident = False
        # line → LRU slot; the OrderedDict carries recency, the arrays
        # give the write path its vectorized line → slot lookup.
        self._row_lru: OrderedDict[int, int] = OrderedDict()
        self._col_lru: OrderedDict[int, int] = OrderedDict()
        self._row_slots = np.full(self.num_blocks, -1, dtype=np.int64)
        self._col_slots = np.full(self.num_blocks, -1, dtype=np.int64)
        # (cache_lines, C) buffers, allocated on first materialization.
        self._row_buf: np.ndarray | None = None
        self._col_buf: np.ndarray | None = None
        # per-axis lists of line-sorted (lines, keys, deltas) batches
        self._jrow: list[tuple[IntArray, IntArray, IntArray]] = []
        self._jcol: list[tuple[IntArray, IntArray, IntArray]] = []
        self._pending = 0
        self._flush_threshold = max(4096, 8 * self.num_blocks)
        self._versions = np.zeros(self.num_blocks, dtype=np.int64)

    # -- journal --------------------------------------------------------
    def _flush(self) -> None:
        """Fold every pending journal batch into the sparse backing.

        The backing's aggregation path also audits non-negativity, so a
        caller delta-accounting bug surfaces here (at the latest at the
        next whole-matrix read) rather than per-move. Cached lines stay
        valid: they already include the journal deltas.
        """
        if self._pending == 0:
            return
        C = self.num_blocks
        keys = np.concatenate([ln * C + k for ln, k, _ in self._jrow])
        deltas = np.concatenate([d for _, _, d in self._jrow])
        self._jrow.clear()
        self._jcol.clear()
        self._pending = 0
        self._backing._apply_cell_deltas(keys, deltas)

    @staticmethod
    def _consolidate(
        journal: list[tuple[IntArray, IntArray, IntArray]],
    ) -> None:
        """Merge the batch list into one line-sorted batch.

        Runs on the *miss* path only (writes append in O(1)): a miss
        that finds more than :data:`_MAX_JOURNAL_BATCHES` batches pays
        one vectorized argsort so that it — and every later miss until
        the next pile-up — replays with a single binary search.
        """
        lines = np.concatenate([b[0] for b in journal])
        keys = np.concatenate([b[1] for b in journal])
        deltas = np.concatenate([b[2] for b in journal])
        order = np.argsort(lines, kind="stable")
        journal[:] = [(lines[order], keys[order], deltas[order])]

    @staticmethod
    def _write_through(
        slots: IntArray,
        buf: np.ndarray | None,
        lines: IntArray,
        keys: IntArray,
        deltas: IntArray,
    ) -> None:
        """Apply a batch to every cached line it touches, in one add.at."""
        if buf is None:
            return
        s = slots[lines]
        hit = s >= 0
        if hit.any():
            np.add.at(buf, (s[hit], keys[hit]), deltas[hit])

    def _record(self, rows: IntArray, cols: IntArray, deltas: IntArray) -> None:
        """Journal a batch of cell deltas (duplicates allowed)."""
        n = rows.shape[0]
        if n == 0:
            return
        C = self.num_blocks
        order = np.argsort(rows * C + cols, kind="stable")
        self._jrow.append((rows[order], cols[order], deltas[order]))
        self._write_through(self._row_slots, self._row_buf, rows, cols, deltas)
        order = np.argsort(cols * C + rows, kind="stable")
        self._jcol.append((cols[order], rows[order], deltas[order]))
        self._write_through(self._col_slots, self._col_buf, cols, rows, deltas)
        np.add.at(self._versions, rows, 1)
        np.add.at(self._versions, cols, 1)
        self._pending += n
        if self._pending >= self._flush_threshold:
            self._flush()

    # -- line materialization -------------------------------------------
    @staticmethod
    def _replay(
        journal: list[tuple[IntArray, IntArray, IntArray]],
        line: int,
        target: IntArray,
    ) -> None:
        """Apply a line's pending deltas; batches are line-sorted."""
        for lines, keys, deltas in journal:
            lo = int(np.searchsorted(lines, line, side="left"))
            hi = int(np.searchsorted(lines, line, side="right"))
            if hi > lo:
                _K.index_add(target, keys[lo:hi], deltas[lo:hi])

    def _prefill_axis(self, axis: int) -> None:
        """Materialize *every* line of an axis in one vectorized shot.

        Only possible when ``C <= cache_lines``; in that regime the
        hybrid engine is a dense mirror with a write-behind journal, so
        the first miss pays one ``to_dense`` instead of C per-line
        gathers and no later read ever misses (until an invalidation).
        """
        C = self.num_blocks
        dense = self._backing.to_dense()
        buf = np.zeros((self.cache_lines, C), dtype=np.int64)
        buf[:C] = dense if axis == 0 else dense.T
        for lines, keys, deltas in (self._jrow if axis == 0 else self._jcol):
            np.add.at(buf, (lines, keys), deltas)
        lru = self._row_lru if axis == 0 else self._col_lru
        lru.clear()
        lru.update((i, i) for i in range(C))
        slots = self._row_slots if axis == 0 else self._col_slots
        slots[:] = np.arange(C, dtype=np.int64)
        if axis == 0:
            self._row_buf = buf
            self._row_resident = True
        else:
            self._col_buf = buf
            self._col_resident = True

    def _materialize_axis(
        self, axis: int, line: int, fetch
    ) -> IntArray:
        """Return the cached dense line, materializing (and possibly
        evicting) on a miss. ``axis`` 0 = rows, 1 = cols."""
        lru = self._row_lru if axis == 0 else self._col_lru
        slot = lru.get(line)
        if slot is not None:
            lru.move_to_end(line)
            return (self._row_buf if axis == 0 else self._col_buf)[slot]
        if self.num_blocks <= self.cache_lines:
            self._prefill_axis(axis)
            return (self._row_buf if axis == 0 else self._col_buf)[line]
        slots = self._row_slots if axis == 0 else self._col_slots
        buf = self._row_buf if axis == 0 else self._col_buf
        if buf is None:
            buf = np.zeros((self.cache_lines, self.num_blocks), dtype=np.int64)
            if axis == 0:
                self._row_buf = buf
            else:
                self._col_buf = buf
        if len(lru) >= self.cache_lines:
            evicted, slot = lru.popitem(last=False)
            slots[evicted] = -1
        else:
            slot = len(lru)
        out = buf[slot]
        out[:] = fetch(line)
        journal = self._jrow if axis == 0 else self._jcol
        if len(journal) > _MAX_JOURNAL_BATCHES:
            self._consolidate(journal)
        self._replay(journal, line, out)
        lru[line] = slot
        slots[line] = slot
        return out

    def _materialize_row(self, r: int) -> IntArray:
        return self._materialize_axis(0, r, self._backing.dense_row)

    def _materialize_col(self, c: int) -> IntArray:
        return self._materialize_axis(1, c, self._backing.dense_col)

    def _invalidate_lines(self) -> None:
        """Drop every cached line and advance every version counter."""
        self._row_lru.clear()
        self._col_lru.clear()
        self._row_slots.fill(-1)
        self._col_slots.fill(-1)
        self._row_resident = False
        self._col_resident = False
        self._versions += 1

    # -- reads ----------------------------------------------------------
    # The ``_row_resident`` fast paths matter: in the C <= cache_lines
    # regime every line sits at slot == line, and skipping the LRU dict
    # work brings per-read cost to within a few percent of the dense
    # oracle's direct indexing.
    def get(self, r: int, c: int) -> int:
        if self._row_resident:
            return int(self._row_buf[r, c])
        return int(self._materialize_row(r)[c])

    def row_gather(self, r: int, cols: IntArray) -> IntArray:
        row = self._row_buf[r] if self._row_resident else self._materialize_row(r)
        return row[np.asarray(cols, dtype=np.int64)]

    def col_gather(self, c: int, rows: IntArray) -> IntArray:
        col = self._col_buf[c] if self._col_resident else self._materialize_col(c)
        return col[np.asarray(rows, dtype=np.int64)]

    def gather(self, rows: IntArray, cols: IntArray) -> IntArray:
        self._flush()
        return self._backing.gather(rows, cols)

    def dense_row(self, r: int) -> IntArray:
        if self._row_resident:
            return self._row_buf[r].copy()
        return self._materialize_row(r).copy()

    def dense_col(self, c: int) -> IntArray:
        if self._col_resident:
            return self._col_buf[c].copy()
        return self._materialize_col(c).copy()

    def diagonal(self) -> IntArray:
        self._flush()
        return self._backing.diagonal()

    def sym_row_cdf(self, u: int) -> RowCDF:
        if self._row_resident and self._col_resident:
            return RowCDF(
                None, _K.sym_cdf_lines(self._row_buf[u], self._col_buf[u])
            )
        row = self._materialize_row(u)
        col = self._materialize_col(u)
        return RowCDF(None, _K.sym_cdf_lines(row, col))

    def nonzero(self) -> tuple[IntArray, IntArray, IntArray]:
        self._flush()
        return self._backing.nonzero()

    def row_sums(self) -> IntArray:
        self._flush()
        return self._backing.row_sums()

    def col_sums(self) -> IntArray:
        self._flush()
        return self._backing.col_sums()

    def to_dense(self) -> np.ndarray:
        self._flush()
        return self._backing.to_dense()

    def likelihood_matrix(self) -> np.ndarray:
        self._flush()
        return self._backing.likelihood_matrix()

    # -- mutations ------------------------------------------------------
    def apply_move(self, r, s, t_out, c_out, t_in, c_in, loops) -> None:
        t_out = np.asarray(t_out, dtype=np.int64)
        t_in = np.asarray(t_in, dtype=np.int64)
        parts_r = [
            np.full(t_out.shape[0], r, dtype=np.int64),
            np.full(t_out.shape[0], s, dtype=np.int64),
            t_in, t_in,
        ]
        parts_c = [t_out, t_out,
                   np.full(t_in.shape[0], r, dtype=np.int64),
                   np.full(t_in.shape[0], s, dtype=np.int64)]
        parts_d = [-np.asarray(c_out, dtype=np.int64),
                   np.asarray(c_out, dtype=np.int64),
                   -np.asarray(c_in, dtype=np.int64),
                   np.asarray(c_in, dtype=np.int64)]
        if loops:
            diag = np.asarray([r, s], dtype=np.int64)
            parts_r.append(diag)
            parts_c.append(diag)
            parts_d.append(np.asarray([-loops, loops], dtype=np.int64))
        self._record(
            np.concatenate(parts_r),
            np.concatenate(parts_c),
            np.concatenate(parts_d),
        )

    def scatter_edges(self, old_src, old_dst, new_src, new_dst) -> None:
        old_src = np.asarray(old_src, dtype=np.int64)
        new_src = np.asarray(new_src, dtype=np.int64)
        rows = np.concatenate([old_src, new_src])
        if rows.shape[0] == 0:
            return
        cols = np.concatenate([
            np.asarray(old_dst, dtype=np.int64),
            np.asarray(new_dst, dtype=np.int64),
        ])
        deltas = np.concatenate([
            np.full(old_src.shape[0], -1, dtype=np.int64),
            np.full(new_src.shape[0], 1, dtype=np.int64),
        ])
        self._record(rows, cols, deltas)

    def merge_into(self, r: int, s: int) -> None:
        self._flush()
        self._backing.merge_into(r, s)
        # Every cached row holds cells at columns r and s, and every
        # cached column holds cells at rows r and s — all shifted by the
        # merge, so the whole cache (and every CDF built on it) is stale.
        self._invalidate_lines()

    def compact(self, keep: IntArray, mapping: IntArray) -> "HybridBlockState":
        self._flush()
        return HybridBlockState(self._backing.compact(keep, mapping))

    def copy(self) -> "HybridBlockState":
        self._flush()
        return HybridBlockState(self._backing.copy(), self.cache_lines)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_edges(cls, src_blocks, dst_blocks, num_blocks) -> "HybridBlockState":
        return cls(SparseBlockState.from_edges(src_blocks, dst_blocks, num_blocks))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "HybridBlockState":
        return cls(SparseBlockState.from_dense(dense))

    # -- observability --------------------------------------------------
    tracks_line_versions = True

    def line_version(self, u: int) -> int:
        return int(self._versions[u])

    @property
    def nnz(self) -> int:
        self._flush()
        return self._backing.nnz

    @property
    def total(self) -> int:
        self._flush()
        return self._backing.total

    def memory_bytes(self) -> int:
        """Backing + line buffers + journal + lookup arrays, no flush."""
        total = self._backing.memory_bytes() + int(self._versions.nbytes)
        total += int(self._row_slots.nbytes) + int(self._col_slots.nbytes)
        per_array_overhead = 112
        for buf in (self._row_buf, self._col_buf):
            if buf is not None:
                total += int(buf.nbytes) + per_array_overhead
        for journal in (self._jrow, self._jcol):
            for lines, keys, deltas in journal:
                total += int(lines.nbytes) + int(keys.nbytes)
                total += int(deltas.nbytes) + 3 * per_array_overhead
        return total


# ----------------------------------------------------------------------
# The "auto" storage policy
# ----------------------------------------------------------------------
#: Config value that defers the engine choice to the policy below.
AUTO_STORAGE = "auto"

#: Environment override for the policy's dense-matrix memory budget.
STORAGE_BUDGET_ENV = "REPRO_STORAGE_BUDGET_BYTES"

#: Above this budget a dense (C, C) int64 matrix is refused by default.
_DEFAULT_BUDGET_BYTES = 512 * 2**20

#: Below this footprint dense always wins — cache-resident and O(1) reads.
_SMALL_DENSE_BYTES = 32 * 2**20

#: A matrix this full gains nothing from sparse-backed storage.
_DENSE_DENSITY = 0.05


def resolve_block_storage(
    name: str,
    num_vertices: int,
    num_edges: int,
    budget_bytes: int | None = None,
) -> tuple[str, str]:
    """Resolve a storage name to a concrete engine; explain the choice.

    Concrete names pass through untouched. ``"auto"`` picks by the
    worst-case dense footprint (C = V blocks, the agglomerative start
    state) against a memory budget, and by the expected density ``E /
    C²``: small or near-dense matrices go ``dense``, everything else
    ``hybrid``. The decision is a pure function of ``(V, E, budget)``,
    so it is safe to fold into checkpoint config digests. Returns
    ``(engine, reason)``.
    """
    if name != AUTO_STORAGE:
        return name, "explicit"
    if budget_bytes is None:
        budget_bytes = int(
            os.environ.get(STORAGE_BUDGET_ENV, _DEFAULT_BUDGET_BYTES)
        )
    c = max(int(num_vertices), 1)
    dense_bytes = 8 * c * c
    density = float(num_edges) / float(c * c)
    if dense_bytes <= _SMALL_DENSE_BYTES:
        return "dense", (
            f"dense fits comfortably: {dense_bytes} B at C={c} "
            f"(threshold {_SMALL_DENSE_BYTES} B)"
        )
    if dense_bytes <= budget_bytes and density >= _DENSE_DENSITY:
        return "dense", (
            f"near-dense matrix (density {density:.3g} >= {_DENSE_DENSITY}) "
            f"within budget ({dense_bytes} <= {budget_bytes} B)"
        )
    return "hybrid", (
        f"C={c} would need {dense_bytes} B dense against a "
        f"{budget_bytes} B budget at density {density:.3g}"
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_STORAGE_REGISTRY: dict[str, type[BlockState]] = {}


def register_block_storage(name: str, cls: type[BlockState]) -> None:
    """Register a storage engine class under ``name`` (plugins/tests)."""
    if name in _STORAGE_REGISTRY:
        raise BackendError(f"block storage {name!r} already registered")
    _STORAGE_REGISTRY[name] = cls


def get_block_storage(name: str) -> type[BlockState]:
    """Look up a storage engine class: 'dense', 'sparse' or 'hybrid'."""
    cls = _STORAGE_REGISTRY.get(name)
    if cls is None:
        raise BackendError(
            f"unknown block storage {name!r}; "
            f"available: {sorted(_STORAGE_REGISTRY)}"
        )
    return cls


def available_block_storages() -> list[str]:
    return sorted(_STORAGE_REGISTRY)


register_block_storage("dense", DenseBlockState)
register_block_storage("sparse", SparseBlockState)
register_block_storage("hybrid", HybridBlockState)
