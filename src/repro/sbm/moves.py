"""Proposal distributions and the Metropolis-Hastings acceptance rule.

Both SBP phases share the neighbour-guided proposal of the
GraphChallenge SBP lineage (Kao et al. 2017, Peixoto 2014): to propose a
new block for an entity currently in block ``r``,

1. pick a uniformly random incident edge and read its far endpoint's
   block ``u``;
2. with probability ``C / (d_u + C)`` propose a uniformly random block
   (exploration; dominates when ``u`` is weakly connected);
3. otherwise draw ``s`` from the multinomial ``(B[u, :] + B[:, u]) / d_u``
   (exploitation: blocks well-connected to ``u`` are likely).

All randomness is consumed from a pre-drawn uniform row (see
:mod:`repro.utils.rng`), which keeps every backend's decisions identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.kernels import cdf_index

__all__ = [
    "propose_vertex_move",
    "propose_block_merge",
    "propose_block_merges_batch",
    "accept_probability",
    "MAX_EXPONENT",
]

#: exp() argument clamp to avoid overflow; exp(700) ~ 1e304.
MAX_EXPONENT = 700.0


def propose_vertex_move(
    bm: Blockmodel, graph: Graph, v: int, uniforms: np.ndarray, cache=None
) -> int:
    """Propose a block for vertex ``v``; may return its current block.

    ``uniforms`` is one row of a :class:`~repro.utils.rng.SweepRandomness`
    table (5 uniforms: edge pick, mixture, multinomial, uniform block,
    accept — the last is consumed by the caller).

    ``cache``, when given, is a
    :class:`~repro.sbm.incremental.ProposalCache` serving memoized
    symmetrized-row CDFs; it must be kept in sync with ``bm`` by the
    caller (dirty-set invalidation after every applied move). Cached CDFs
    are the exact arrays the uncached path builds, so the proposal is
    bit-identical either way.

    All index draws are floor-and-clamp (``min(int(u * n), n - 1)``):
    identical to the plain ``int(u * n)`` floor for ``u ∈ [0, 1)`` and
    safe at the ``u == 1.0`` boundary where the unclamped form indexes
    out of range.
    """
    C = bm.num_blocks
    degree = int(graph.degree[v])
    if degree == 0:
        return min(int(uniforms[3] * C), C - 1)
    incident = graph.incident_neighbors(v)
    neighbor = int(incident[min(int(uniforms[0] * degree), degree - 1)])
    u = int(bm.assignment[neighbor])
    d_u = int(bm.d[u])
    if uniforms[1] < C / (d_u + C):
        return min(int(uniforms[3] * C), C - 1)
    fallback = min(int(uniforms[3] * C), C - 1)
    if cache is not None:
        return cache.row_cdf(u).draw(uniforms[2], fallback)
    return bm.state.sym_row_cdf(u).draw(uniforms[2], fallback)


def propose_block_merge(bm: Blockmodel, r: int, uniforms: np.ndarray) -> int:
    """Propose a block to merge block ``r`` into (never returns ``r``).

    Block-level analogue of :func:`propose_vertex_move`: the "incident
    edges" of block r are the entries of row/column r of B.
    """
    C = bm.num_blocks
    if C <= 1:
        raise ValueError("cannot propose a merge with fewer than two blocks")
    incident = bm.state.sym_row_cdf(r)
    if incident.total == 0:
        return _uniform_other(C, r, uniforms[3])
    u = incident.draw(uniforms[0], _uniform_other(C, r, uniforms[3]))
    d_u = int(bm.d[u])
    if uniforms[1] < C / (d_u + C):
        return _uniform_other(C, r, uniforms[3])
    s = bm.state.sym_row_cdf(u).draw(
        uniforms[2], _uniform_other(C, r, uniforms[3])
    )
    if s == r:
        return _uniform_other(C, r, uniforms[3])
    return s


def propose_block_merges_batch(bm: Blockmodel, uniforms: np.ndarray) -> np.ndarray:
    """Batch form of :func:`propose_block_merge`: all blocks in one shot.

    ``uniforms`` is the full ``(C, proposals, 4)`` table the serial loop
    consumes row by row; the returned ``(C, proposals)`` int64 target
    matrix is bit-identical to evaluating :func:`propose_block_merge` per
    candidate. The draw semantics survive vectorization because every
    inverse-CDF lookup is reduced to integer-exact comparisons: for an
    integer CDF, ``cdf[i] <= x`` holds iff ``cdf[i] <= floor(x)``, so the
    float draw ``u * total`` can be floored once and resolved against a
    single flattened CDF table with per-row offsets.
    """
    C = bm.num_blocks
    if C <= 1:
        raise ValueError("cannot propose a merge with fewer than two blocks")
    u = np.asarray(uniforms, dtype=np.float64)
    if u.ndim != 3 or u.shape[0] != C or u.shape[2] < 4:
        raise ValueError(f"uniforms must have shape (C, proposals, >=4), got {u.shape}")

    # Fallback draw, uniform over the C - 1 blocks != r (see _uniform_other).
    r_col = np.arange(C, dtype=np.int64)[:, None]
    fb = (u[:, :, 3] * (C - 1)).astype(np.int64)
    np.minimum(fb, C - 2, out=fb)  # u == 1.0 boundary, mirrors _uniform_other
    fallback = fb + (fb >= r_col)
    targets = fallback.copy()

    # One compressed CDF table serves both multinomial stages: row r of
    # M = B + B^T is block r's incident-edge profile (stage 1) and the
    # neighbour-block weight vector of any stage-2 draw that landed on r.
    # M is built sparsely (symmetrized COO of B's non-zeros, sorted by
    # (row, col), duplicates segment-summed) and its global value cumsum
    # IS the per-row-offset CDF over non-zero entries only. Zero-weight
    # cells are CDF plateaus that searchsorted(side="right") can never
    # return, so dropping them leaves every draw bit-identical to the
    # dense row scan of the serial oracle.
    nz_r, nz_c, nz_v = bm.state.nonzero()
    key = np.concatenate([nz_r * C + nz_c, nz_c * C + nz_r])
    val = np.concatenate([nz_v, nz_v])
    order = np.argsort(key, kind="stable")
    key = key[order]
    val = val[order]
    if key.size:
        starts = np.concatenate(
            [[0], np.nonzero(np.diff(key))[0] + 1]
        ).astype(np.int64)
        mrow = key[starts] // C
        mcol = key[starts] % C
        mval = np.add.reduceat(val, starts)
    else:
        mrow = mcol = mval = np.empty(0, dtype=np.int64)

    row_ptr = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(np.bincount(mrow, minlength=C), out=row_ptr[1:])
    gcum = np.concatenate([[0], np.cumsum(mval)]).astype(np.int64)
    base = gcum[row_ptr[:-1]]     # cumulative totals of rows < r
    totals = gcum[row_ptr[1:]] - base
    flat = gcum[1:]               # the offset CDF itself

    live = np.nonzero(totals > 0)[0]  # rows with d_r == 0 keep the fallback
    if live.size == 0:
        return targets

    # Stage 1: intermediate block u from block r's incident profile.
    t_r = totals[live][:, None]
    q1 = np.floor(u[live, :, 0] * t_r).astype(np.int64)
    np.minimum(q1, t_r - 1, out=q1)
    ub = mcol[np.searchsorted(flat, q1 + base[live][:, None], side="right")]

    # Stage 2: exploration-vs-exploitation mixture, then the multinomial
    # over u's neighbour blocks for the exploiting candidates.
    d_u = bm.d[ub]
    exploit = u[live, :, 1] >= C / (d_u + C)
    t_u = totals[ub]
    q2 = np.floor(u[live, :, 2] * t_u).astype(np.int64)
    np.minimum(q2, np.maximum(t_u - 1, 0), out=q2)
    pos = np.searchsorted(flat, q2 + base[ub], side="right")
    s = mcol[np.minimum(pos, mcol.size - 1)]  # t_u == 0 rows masked below

    chosen = exploit & (t_u > 0) & (s != live[:, None])
    out_live = fallback[live]
    out_live[chosen] = s[chosen]
    targets[live] = out_live
    return targets


def accept_probability(delta_s: float, hastings: float, beta: float) -> float:
    """Metropolis-Hastings acceptance probability.

    ``min(1, exp(-beta * dS) * hastings)`` — dS is the MDL change
    (negative improves), hastings the proposal-asymmetry correction.
    """
    if hastings <= 0.0:
        return 0.0
    exponent = -beta * delta_s + math.log(hastings)
    if exponent >= 0.0:
        return 1.0
    if exponent < -MAX_EXPONENT:
        return 0.0
    return math.exp(exponent)


def _inverse_cdf_draw(weights: np.ndarray, uniform: float, fallback: int) -> int:
    """Draw an index proportionally to non-negative integer ``weights``."""
    return _cdf_draw(np.cumsum(weights), uniform, fallback)


def _cdf_draw(cdf: np.ndarray, uniform: float, fallback: int) -> int:
    """Inverse-CDF draw against a precomputed integer prefix-sum.

    The float draw ``uniform * total`` is floored and clamped to
    ``total - 1`` before the searchsorted: for an integer CDF,
    ``cdf[i] > x`` iff ``cdf[i] > floor(x)``, so flooring never changes
    the drawn index for ``uniform ∈ [0, 1)``, and the clamp keeps the
    ``uniform == 1.0`` boundary in range (the unclamped form returned
    ``len(cdf)``). The batch merge kernel uses the same semantics.
    """
    total = int(cdf[-1]) if cdf.size else 0
    if total <= 0:
        return fallback
    draw = min(int(uniform * total), total - 1)
    return int(cdf_index(cdf, draw))


def _uniform_other(C: int, r: int, uniform: float) -> int:
    """Uniform draw over the C - 1 blocks different from ``r``."""
    s = min(int(uniform * (C - 1)), C - 2)
    return s + 1 if s >= r else s
