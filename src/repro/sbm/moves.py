"""Proposal distributions and the Metropolis-Hastings acceptance rule.

Both SBP phases share the neighbour-guided proposal of the
GraphChallenge SBP lineage (Kao et al. 2017, Peixoto 2014): to propose a
new block for an entity currently in block ``r``,

1. pick a uniformly random incident edge and read its far endpoint's
   block ``u``;
2. with probability ``C / (d_u + C)`` propose a uniformly random block
   (exploration; dominates when ``u`` is weakly connected);
3. otherwise draw ``s`` from the multinomial ``(B[u, :] + B[:, u]) / d_u``
   (exploitation: blocks well-connected to ``u`` are likely).

All randomness is consumed from a pre-drawn uniform row (see
:mod:`repro.utils.rng`), which keeps every backend's decisions identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel

__all__ = [
    "propose_vertex_move",
    "propose_block_merge",
    "accept_probability",
    "MAX_EXPONENT",
]

#: exp() argument clamp to avoid overflow; exp(700) ~ 1e304.
MAX_EXPONENT = 700.0


def propose_vertex_move(
    bm: Blockmodel, graph: Graph, v: int, uniforms: np.ndarray
) -> int:
    """Propose a block for vertex ``v``; may return its current block.

    ``uniforms`` is one row of a :class:`~repro.utils.rng.SweepRandomness`
    table (5 uniforms: edge pick, mixture, multinomial, uniform block,
    accept — the last is consumed by the caller).
    """
    C = bm.num_blocks
    degree = int(graph.degree[v])
    if degree == 0:
        return int(uniforms[3] * C)
    incident = graph.incident_neighbors(v)
    neighbor = int(incident[int(uniforms[0] * degree)])
    u = int(bm.assignment[neighbor])
    d_u = int(bm.d[u])
    if uniforms[1] < C / (d_u + C):
        return int(uniforms[3] * C)
    weights = bm.B[u, :] + bm.B[:, u]
    return _inverse_cdf_draw(weights, uniforms[2], fallback=int(uniforms[3] * C))


def propose_block_merge(bm: Blockmodel, r: int, uniforms: np.ndarray) -> int:
    """Propose a block to merge block ``r`` into (never returns ``r``).

    Block-level analogue of :func:`propose_vertex_move`: the "incident
    edges" of block r are the entries of row/column r of B.
    """
    C = bm.num_blocks
    if C <= 1:
        raise ValueError("cannot propose a merge with fewer than two blocks")
    incident = bm.B[r, :] + bm.B[:, r]
    d_r = int(incident.sum())
    if d_r == 0:
        return _uniform_other(C, r, uniforms[3])
    u = _inverse_cdf_draw(incident, uniforms[0], fallback=_uniform_other(C, r, uniforms[3]))
    d_u = int(bm.d[u])
    if uniforms[1] < C / (d_u + C):
        return _uniform_other(C, r, uniforms[3])
    weights = bm.B[u, :] + bm.B[:, u]
    s = _inverse_cdf_draw(weights, uniforms[2], fallback=_uniform_other(C, r, uniforms[3]))
    if s == r:
        return _uniform_other(C, r, uniforms[3])
    return s


def accept_probability(delta_s: float, hastings: float, beta: float) -> float:
    """Metropolis-Hastings acceptance probability.

    ``min(1, exp(-beta * dS) * hastings)`` — dS is the MDL change
    (negative improves), hastings the proposal-asymmetry correction.
    """
    if hastings <= 0.0:
        return 0.0
    exponent = -beta * delta_s + math.log(hastings)
    if exponent >= 0.0:
        return 1.0
    if exponent < -MAX_EXPONENT:
        return 0.0
    return math.exp(exponent)


def _inverse_cdf_draw(weights: np.ndarray, uniform: float, fallback: int) -> int:
    """Draw an index proportionally to non-negative integer ``weights``."""
    cdf = np.cumsum(weights)
    total = int(cdf[-1]) if cdf.size else 0
    if total <= 0:
        return fallback
    return int(np.searchsorted(cdf, uniform * total, side="right"))


def _uniform_other(C: int, r: int, uniform: float) -> int:
    """Uniform draw over the C - 1 blocks different from ``r``."""
    s = int(uniform * (C - 1))
    return s + 1 if s >= r else s
