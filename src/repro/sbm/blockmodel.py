"""Mutable degree-corrected blockmodel state.

Holds the inter-block edge-count matrix ``B`` (dense, C x C), the block
degree vectors and the vertex-to-block assignment, and supports the three
state transitions SBP needs:

* :meth:`apply_move` — O(degree) in-place update for one vertex move
  (serial Metropolis-Hastings path, paper Alg. 2 / the V* pass of Alg. 4),
* :meth:`rebuild` — recompute ``B`` from an assignment vector in one
  vectorized pass (the per-sweep reconstruction of A-SBP, Alg. 3),
* :meth:`merge_blocks` / :meth:`compact` — the block-merge phase (Alg. 1).

Dense storage is a deliberate substitution for the authors' C++ sparse
structures: at the reproduction's scales (C <= ~1500) dense rows give
cache-friendly O(C) vector operations and trivially correct vectorized
rebuilds (see DESIGN.md section 5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockmodelError
from repro.graph.graph import Graph
from repro.sbm.entropy import description_length
from repro.types import Assignment, IntArray

__all__ = ["Blockmodel"]


class Blockmodel:
    """Blockmodel state for a fixed graph.

    Attributes
    ----------
    B:
        Dense ``(C, C)`` int64 matrix; ``B[r, s]`` counts edges from
        block r to block s.
    d_out, d_in, d:
        Block degree vectors; ``d = d_out + d_in`` (self-block edges are
        counted once in each direction, so a block's ``d`` weighs its
        internal edges twice, matching the paper's proposal distribution).
    assignment:
        ``assignment[v]`` is the block of vertex v, in ``[0, C)``.
    num_blocks:
        The matrix dimension C. Blocks may be empty after moves; use
        :meth:`compact` to drop them.
    """

    __slots__ = ("B", "d_out", "d_in", "d", "assignment", "num_blocks")

    def __init__(
        self,
        B: np.ndarray,
        d_out: IntArray,
        d_in: IntArray,
        assignment: Assignment,
        num_blocks: int,
    ) -> None:
        self.B = B
        self.d_out = d_out
        self.d_in = d_in
        self.d = d_out + d_in
        self.assignment = assignment
        self.num_blocks = num_blocks

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls, graph: Graph, assignment: Assignment, num_blocks: int | None = None
    ) -> "Blockmodel":
        """Build blockmodel state from a membership vector."""
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_vertices,):
            raise BlockmodelError(
                f"assignment must have shape ({graph.num_vertices},), "
                f"got {assignment.shape}"
            )
        if num_blocks is None:
            num_blocks = int(assignment.max()) + 1 if assignment.size else 1
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_blocks):
            raise BlockmodelError("assignment values must lie in [0, num_blocks)")
        B = _count_block_edges(graph, assignment, num_blocks)
        d_out = B.sum(axis=1)
        d_in = B.sum(axis=0)
        return cls(B, d_out, d_in, assignment.copy(), num_blocks)

    @classmethod
    def singleton(cls, graph: Graph) -> "Blockmodel":
        """The SBP starting point: every vertex in its own block."""
        assignment = np.arange(graph.num_vertices, dtype=np.int64)
        return cls.from_assignment(graph, assignment, graph.num_vertices)

    def copy(self) -> "Blockmodel":
        return Blockmodel(
            self.B.copy(),
            self.d_out.copy(),
            self.d_in.copy(),
            self.assignment.copy(),
            self.num_blocks,
        )

    def rebuild(self, graph: Graph, assignment: Assignment | None = None) -> None:
        """Recompute ``B`` and degrees from ``assignment`` (A-SBP step).

        When ``assignment`` is given it replaces the stored vector. The
        matrix dimension is kept so block ids remain stable across the
        rebuild (empty blocks are allowed mid-phase).
        """
        if assignment is not None:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != self.assignment.shape:
                raise BlockmodelError("assignment shape changed across rebuild")
            self.assignment = assignment.copy()
        self.B = _count_block_edges(graph, self.assignment, self.num_blocks)
        self.d_out = self.B.sum(axis=1)
        self.d_in = self.B.sum(axis=0)
        self.d = self.d_out + self.d_in

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def apply_move(
        self,
        v: int,
        s: int,
        t_out: IntArray,
        c_out: IntArray,
        t_in: IntArray,
        c_in: IntArray,
        loops: int,
        deg_out_v: int,
        deg_in_v: int,
    ) -> None:
        """Move vertex ``v`` to block ``s``, updating ``B`` incrementally.

        ``t_out``/``c_out`` are the neighbour blocks of v's out-edges
        (excluding self-loops) and their multiplicities under the
        *current* assignment; likewise ``t_in`` for in-edges. ``loops``
        is v's self-loop count. These are exactly the quantities the
        delta-MDL evaluation already computed, so the move itself is
        O(degree) with no recounting.
        """
        r = int(self.assignment[v])
        if r == s:
            return
        B = self.B
        B[r, t_out] -= c_out
        B[s, t_out] += c_out
        B[t_in, r] -= c_in
        B[t_in, s] += c_in
        if loops:
            B[r, r] -= loops
            B[s, s] += loops
        self.d_out[r] -= deg_out_v
        self.d_out[s] += deg_out_v
        self.d_in[r] -= deg_in_v
        self.d_in[s] += deg_in_v
        self.d[r] -= deg_out_v + deg_in_v
        self.d[s] += deg_out_v + deg_in_v
        self.assignment[v] = s

    def apply_sweep_delta(
        self,
        graph: Graph,
        moved_vertices: IntArray,
        moved_targets: IntArray,
    ) -> None:
        """Batch move ``moved_vertices[i]`` to ``moved_targets[i]`` in place.

        The O(Σ deg(moved)) alternative to :meth:`rebuild` at the A-SBP
        sweep barrier: scatter-subtract the moved vertices' incident
        edges under the old assignment, scatter-add under the new one.
        Exactly equal to a full recount (int64 arithmetic); see
        :func:`repro.sbm.incremental.apply_sweep_delta` for the edge
        accounting.
        """
        from repro.sbm.incremental import apply_sweep_delta

        apply_sweep_delta(self, graph, moved_vertices, moved_targets)

    def merge_blocks(self, r: int, s: int) -> None:
        """Merge block ``r`` into block ``s`` in place (Alg. 1 apply step).

        Row/column ``r`` become empty; vertices of ``r`` are reassigned
        to ``s``. Call :meth:`compact` after the merge phase to drop the
        empty rows.
        """
        if r == s:
            raise BlockmodelError("cannot merge a block with itself")
        B = self.B
        B[s, :] += B[r, :]
        B[:, s] += B[:, r]
        # B[r, r] was added to B[s, r] then B[s, r] into B[s, s]; the two
        # full-row/col adds above handle all cross terms, then we zero r.
        B[r, :] = 0
        B[:, r] = 0
        self.d_out[s] += self.d_out[r]
        self.d_in[s] += self.d_in[r]
        self.d[s] += self.d[r]
        self.d_out[r] = 0
        self.d_in[r] = 0
        self.d[r] = 0
        self.assignment[self.assignment == r] = s

    def compact(self) -> IntArray:
        """Drop empty blocks and relabel densely; returns the old->new map.

        Entries for empty blocks map to -1.
        """
        occupied = np.bincount(self.assignment, minlength=self.num_blocks) > 0
        mapping = np.full(self.num_blocks, -1, dtype=np.int64)
        mapping[occupied] = np.arange(int(occupied.sum()), dtype=np.int64)
        keep = np.nonzero(occupied)[0]
        self.B = np.ascontiguousarray(self.B[np.ix_(keep, keep)])
        self.d_out = self.d_out[keep].copy()
        self.d_in = self.d_in[keep].copy()
        self.d = self.d[keep].copy()
        self.assignment = mapping[self.assignment]
        self.num_blocks = int(keep.shape[0])
        return mapping

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.B.sum())

    @property
    def num_nonempty_blocks(self) -> int:
        return int(np.count_nonzero(np.bincount(self.assignment, minlength=self.num_blocks)))

    def block_sizes(self) -> IntArray:
        return np.bincount(self.assignment, minlength=self.num_blocks)

    def mdl(self, graph: Graph) -> float:
        """Full description length (Eq. 2) of this state for ``graph``."""
        return description_length(
            graph.num_edges,
            graph.num_vertices,
            self.B,
            self.d_out,
            self.d_in,
            num_blocks=self.num_blocks,
        )

    def check_consistency(self, graph: Graph) -> None:
        """Raise :class:`BlockmodelError` unless state matches the graph.

        Used by tests and by drivers in debug mode; O(E + C^2).
        """
        expected = _count_block_edges(graph, self.assignment, self.num_blocks)
        if not np.array_equal(expected, self.B):
            raise BlockmodelError("B matrix inconsistent with assignment")
        if not np.array_equal(self.B.sum(axis=1), self.d_out):
            raise BlockmodelError("d_out inconsistent with B")
        if not np.array_equal(self.B.sum(axis=0), self.d_in):
            raise BlockmodelError("d_in inconsistent with B")
        if not np.array_equal(self.d, self.d_out + self.d_in):
            raise BlockmodelError("d inconsistent with d_out + d_in")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Blockmodel(C={self.num_blocks}, occupied={self.num_nonempty_blocks}, "
            f"E={self.num_edges})"
        )


def _count_block_edges(graph: Graph, assignment: Assignment, num_blocks: int) -> np.ndarray:
    """Vectorized inter-block edge count: one pass over the edge list."""
    B = np.zeros((num_blocks, num_blocks), dtype=np.int64)
    if graph.num_edges:
        src_blocks = assignment[graph.edges[:, 0]]
        dst_blocks = assignment[graph.edges[:, 1]]
        np.add.at(B, (src_blocks, dst_blocks), 1)
    return B
