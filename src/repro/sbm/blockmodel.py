"""Mutable degree-corrected blockmodel state.

Holds the inter-block edge-count matrix (behind a pluggable
:class:`~repro.sbm.block_storage.BlockState` engine), the block degree
vectors and the vertex-to-block assignment, and supports the three state
transitions SBP needs:

* :meth:`apply_move` — O(degree) in-place update for one vertex move
  (serial Metropolis-Hastings path, paper Alg. 2 / the V* pass of Alg. 4),
* :meth:`rebuild` — recompute the matrix from an assignment vector in one
  vectorized pass (the per-sweep reconstruction of A-SBP, Alg. 3),
* :meth:`merge_blocks` / :meth:`compact` — the block-merge phase (Alg. 1).

Storage is selected at construction (``storage="dense"`` or
``"sparse"``; see :mod:`repro.sbm.block_storage`): dense keeps the
original contiguous C x C oracle, sparse keeps per-row non-zero arrays
whose footprint scales with nnz rather than C^2. Both engines produce
bit-identical trajectories. The :attr:`B` property preserves the legacy
dense view — for the dense engine it is the *live* array (in-place pokes
keep working); for sparse engines it is a dense materialization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BlockmodelError
from repro.graph.graph import Graph
from repro.sbm.block_storage import (
    AUTO_STORAGE,
    BlockState,
    DenseBlockState,
    get_block_storage,
    resolve_block_storage,
)
from repro.sbm.entropy import description_length
from repro.types import Assignment, IntArray

__all__ = ["Blockmodel"]


def _resolve_storage(
    storage: str | type[BlockState], graph: Graph | None = None
) -> type[BlockState]:
    if isinstance(storage, str):
        if storage == AUTO_STORAGE:
            if graph is None:
                raise BlockmodelError(
                    "storage='auto' needs a graph to resolve against"
                )
            storage, _ = resolve_block_storage(
                storage, graph.num_vertices, graph.num_edges
            )
        return get_block_storage(storage)
    return storage


class Blockmodel:
    """Blockmodel state for a fixed graph.

    Attributes
    ----------
    state:
        The :class:`~repro.sbm.block_storage.BlockState` engine holding
        the ``(C, C)`` int64 inter-block edge-count matrix;
        ``state.get(r, s)`` counts edges from block r to block s.
    d_out, d_in, d:
        Block degree vectors; ``d = d_out + d_in`` (self-block edges are
        counted once in each direction, so a block's ``d`` weighs its
        internal edges twice, matching the paper's proposal distribution).
    assignment:
        ``assignment[v]`` is the block of vertex v, in ``[0, C)``.
    num_blocks:
        The matrix dimension C. Blocks may be empty after moves; use
        :meth:`compact` to drop them.
    delta_epoch:
        Monotonic counter bumped whenever the state is rewritten without
        per-move notification (:meth:`apply_edge_delta`, :meth:`rebuild`);
        caches keyed on matrix rows (``ProposalCache``) compare it to
        drop stale entries.
    """

    __slots__ = (
        "state", "d_out", "d_in", "d", "assignment", "num_blocks",
        "delta_epoch",
    )

    def __init__(
        self,
        B: np.ndarray | BlockState,
        d_out: IntArray,
        d_in: IntArray,
        assignment: Assignment,
        num_blocks: int,
    ) -> None:
        if isinstance(B, BlockState):
            self.state = B
        else:
            self.state = DenseBlockState(B)
        self.d_out = d_out
        self.d_in = d_in
        self.d = d_out + d_in
        self.assignment = assignment
        self.num_blocks = num_blocks
        self.delta_epoch = 0

    @property
    def B(self) -> np.ndarray:
        """Dense view of the inter-block matrix.

        Live (mutable, aliasing the state) for the dense engine; a dense
        materialization for sparse engines. Kernels should read through
        :attr:`state` instead — this property exists for legacy call
        sites, diagnostics and serialization.
        """
        return self.state.likelihood_matrix()

    @property
    def storage_name(self) -> str:
        """Registry name of the active storage engine."""
        return self.state.name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls,
        graph: Graph,
        assignment: Assignment,
        num_blocks: int | None = None,
        storage: str | type[BlockState] = "dense",
    ) -> "Blockmodel":
        """Build blockmodel state from a membership vector."""
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_vertices,):
            raise BlockmodelError(
                f"assignment must have shape ({graph.num_vertices},), "
                f"got {assignment.shape}"
            )
        if num_blocks is None:
            num_blocks = int(assignment.max()) + 1 if assignment.size else 1
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_blocks):
            raise BlockmodelError("assignment values must lie in [0, num_blocks)")
        state = _count_block_edges_state(
            graph, assignment, num_blocks, _resolve_storage(storage, graph)
        )
        d_out = state.row_sums()
        d_in = state.col_sums()
        return cls(state, d_out, d_in, assignment.copy(), num_blocks)

    @classmethod
    def singleton(
        cls, graph: Graph, storage: str | type[BlockState] = "dense"
    ) -> "Blockmodel":
        """The SBP starting point: every vertex in its own block."""
        assignment = np.arange(graph.num_vertices, dtype=np.int64)
        return cls.from_assignment(
            graph, assignment, graph.num_vertices, storage=storage
        )

    def copy(self) -> "Blockmodel":
        return Blockmodel(
            self.state.copy(),
            self.d_out.copy(),
            self.d_in.copy(),
            self.assignment.copy(),
            self.num_blocks,
        )

    def rebuild(self, graph: Graph, assignment: Assignment | None = None) -> None:
        """Recompute the matrix and degrees from ``assignment`` (A-SBP step).

        When ``assignment`` is given it replaces the stored vector. The
        matrix dimension is kept so block ids remain stable across the
        rebuild (empty blocks are allowed mid-phase). The storage engine
        is preserved.
        """
        if assignment is not None:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != self.assignment.shape:
                raise BlockmodelError("assignment shape changed across rebuild")
            self.assignment = assignment.copy()
        self.state = _count_block_edges_state(
            graph, self.assignment, self.num_blocks, type(self.state)
        )
        self.d_out = self.state.row_sums()
        self.d_in = self.state.col_sums()
        self.d = self.d_out + self.d_in
        self.delta_epoch += 1

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def apply_move(
        self,
        v: int,
        s: int,
        t_out: IntArray,
        c_out: IntArray,
        t_in: IntArray,
        c_in: IntArray,
        loops: int,
        deg_out_v: int,
        deg_in_v: int,
    ) -> None:
        """Move vertex ``v`` to block ``s``, updating the matrix incrementally.

        ``t_out``/``c_out`` are the neighbour blocks of v's out-edges
        (excluding self-loops) and their multiplicities under the
        *current* assignment; likewise ``t_in`` for in-edges. ``loops``
        is v's self-loop count. These are exactly the quantities the
        delta-MDL evaluation already computed, so the move itself is
        O(degree) with no recounting.
        """
        r = int(self.assignment[v])
        if r == s:
            return
        self.state.apply_move(r, s, t_out, c_out, t_in, c_in, loops)
        self.d_out[r] -= deg_out_v
        self.d_out[s] += deg_out_v
        self.d_in[r] -= deg_in_v
        self.d_in[s] += deg_in_v
        self.d[r] -= deg_out_v + deg_in_v
        self.d[s] += deg_out_v + deg_in_v
        self.assignment[v] = s

    def apply_sweep_delta(
        self,
        graph: Graph,
        moved_vertices: IntArray,
        moved_targets: IntArray,
    ) -> None:
        """Batch move ``moved_vertices[i]`` to ``moved_targets[i]`` in place.

        The O(Σ deg(moved)) alternative to :meth:`rebuild` at the A-SBP
        sweep barrier: scatter-subtract the moved vertices' incident
        edges under the old assignment, scatter-add under the new one.
        Exactly equal to a full recount (int64 arithmetic); see
        :func:`repro.sbm.incremental.apply_sweep_delta` for the edge
        accounting.
        """
        from repro.sbm.incremental import apply_sweep_delta

        apply_sweep_delta(self, graph, moved_vertices, moved_targets)

    def apply_edge_delta(self, batch) -> None:
        """Apply an :class:`~repro.graph.stream.EdgeBatch` in place.

        The streaming barrier: the assignment stays fixed while the
        graph's edge multiset changes. Scatter-subtracts the removed
        edges' block pairs and scatter-adds the added ones through the
        storage engine — O(|batch|), bit-identical to rebuilding from
        the mutated graph; see
        :func:`repro.sbm.incremental.apply_edge_delta`.
        """
        from repro.sbm.incremental import apply_edge_delta

        apply_edge_delta(self, batch)

    def merge_blocks(self, r: int, s: int) -> None:
        """Merge block ``r`` into block ``s`` in place (Alg. 1 apply step).

        Row/column ``r`` become empty; vertices of ``r`` are reassigned
        to ``s``. Call :meth:`compact` after the merge phase to drop the
        empty rows.
        """
        if r == s:
            raise BlockmodelError("cannot merge a block with itself")
        self.state.merge_into(r, s)
        self.d_out[s] += self.d_out[r]
        self.d_in[s] += self.d_in[r]
        self.d[s] += self.d[r]
        self.d_out[r] = 0
        self.d_in[r] = 0
        self.d[r] = 0
        self.assignment[self.assignment == r] = s

    def compact(self) -> IntArray:
        """Drop empty blocks and relabel densely; returns the old->new map.

        Entries for empty blocks map to -1.
        """
        occupied = np.bincount(self.assignment, minlength=self.num_blocks) > 0
        mapping = np.full(self.num_blocks, -1, dtype=np.int64)
        mapping[occupied] = np.arange(int(occupied.sum()), dtype=np.int64)
        keep = np.nonzero(occupied)[0]
        self.state = self.state.compact(keep, mapping)
        self.d_out = self.d_out[keep].copy()
        self.d_in = self.d_in[keep].copy()
        self.d = self.d[keep].copy()
        self.assignment = mapping[self.assignment]
        self.num_blocks = int(keep.shape[0])
        return mapping

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.state.total

    @property
    def num_nonempty_blocks(self) -> int:
        return int(np.count_nonzero(np.bincount(self.assignment, minlength=self.num_blocks)))

    def block_sizes(self) -> IntArray:
        return np.bincount(self.assignment, minlength=self.num_blocks)

    def mdl(self, graph: Graph) -> float:
        """Full description length (Eq. 2) of this state for ``graph``.

        The entropy kernel receives a *dense* matrix from either engine
        (:meth:`~repro.sbm.block_storage.BlockState.likelihood_matrix`)
        so numpy's pairwise summation walks identical operands and the
        MDL trace stays byte-equal across storages.
        """
        return description_length(
            graph.num_edges,
            graph.num_vertices,
            self.state.likelihood_matrix(),
            self.d_out,
            self.d_in,
            num_blocks=self.num_blocks,
        )

    def check_consistency(self, graph: Graph) -> None:
        """Raise :class:`BlockmodelError` unless state matches the graph.

        Used by tests and by drivers in debug mode; O(E + C^2).
        """
        expected = _count_block_edges(graph, self.assignment, self.num_blocks)
        if not np.array_equal(expected, self.state.to_dense()):
            raise BlockmodelError("B matrix inconsistent with assignment")
        if not np.array_equal(self.state.row_sums(), self.d_out):
            raise BlockmodelError("d_out inconsistent with B")
        if not np.array_equal(self.state.col_sums(), self.d_in):
            raise BlockmodelError("d_in inconsistent with B")
        if not np.array_equal(self.d, self.d_out + self.d_in):
            raise BlockmodelError("d inconsistent with d_out + d_in")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Blockmodel(C={self.num_blocks}, occupied={self.num_nonempty_blocks}, "
            f"E={self.num_edges}, storage={self.storage_name})"
        )


def _count_block_edges_state(
    graph: Graph,
    assignment: Assignment,
    num_blocks: int,
    storage_cls: type[BlockState],
) -> BlockState:
    """Count inter-block edges into a fresh storage engine."""
    if graph.num_edges:
        src_blocks = assignment[graph.edges[:, 0]]
        dst_blocks = assignment[graph.edges[:, 1]]
    else:
        src_blocks = np.empty(0, dtype=np.int64)
        dst_blocks = np.empty(0, dtype=np.int64)
    return storage_cls.from_edges(src_blocks, dst_blocks, num_blocks)


def _count_block_edges(graph: Graph, assignment: Assignment, num_blocks: int) -> np.ndarray:
    """Vectorized inter-block edge count: one pass over the edge list."""
    B = np.zeros((num_blocks, num_blocks), dtype=np.int64)
    if graph.num_edges:
        src_blocks = assignment[graph.edges[:, 0]]
        dst_blocks = assignment[graph.edges[:, 1]]
        np.add.at(B, (src_blocks, dst_blocks), 1)
    return B
