"""Incremental blockmodel update engine — the sweep barrier, made cheap.

The paper's own profiling (§3.1, Fig. 2) identifies the per-sweep
blockmodel reconstruction as the A-SBP/H-SBP synchronization barrier:
``Blockmodel.rebuild`` recounts every edge, O(E), even late in a phase
when only a handful of vertices actually moved. This module replaces
that recount with two delta-based mechanisms, both **bit-identical** to
the full recount (all counts are int64, so scatter-subtract/add is exact
arithmetic, not an approximation):

* :func:`apply_sweep_delta` — given the moved-vertex set of a sweep,
  update ``B``/``d_out``/``d_in``/``d`` by subtracting the moved
  vertices' incident edges under the old assignment and adding them
  under the new one: O(Σ deg(moved)) instead of O(E). Self-loops and
  edges between two moved vertices are handled by snapshotting every
  touched edge's old endpoints *before* the assignment mutates, so each
  directed edge is counted exactly once on each side of the barrier.
* :class:`ProposalCache` — the serial Metropolis path (Alg. 2 and the
  V* pass of Alg. 4) re-materializes the dense symmetrized row
  ``B[u, :] + B[:, u]`` and its prefix-sum CDF for every single
  proposal, O(C) per vertex. The cache keeps the CDFs per block and
  invalidates only the blocks an accepted move actually dirtied (the
  O(degree) set ``{r, s} ∪ t_out ∪ t_in``), so repeated proposals
  against unchanged blocks skip the add + cumsum entirely. Cached CDFs
  are the same int64 arrays the uncached path would build, so every
  draw consumes the identical uniforms and lands on the identical
  block.

Both engines are dispatched through the
:func:`~repro.parallel.backend.get_update_strategy` registry (mirroring
the PR-1 ``MergeBackend`` pattern): ``rebuild`` is the retained O(E)
oracle, ``incremental`` the delta engine; ``SBPConfig.update_strategy``
/ ``--update-strategy`` selects one. The ``verify_every`` audit hook of
:class:`IncrementalUpdater` reuses the resilience layer's
:class:`~repro.resilience.audit.InvariantAuditor` to assert the
exact-equality claim against a recount on a configurable cadence.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.backend import SweepUpdater, register_update_strategy
from repro.sbm import kernels as _K
from repro.sbm.block_storage import RowCDF
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray
from repro.utils.arrays import expand_ranges
from repro.utils.timer import StopwatchPool

__all__ = [
    "apply_sweep_delta",
    "apply_edge_delta",
    "ProposalCache",
    "RebuildUpdater",
    "IncrementalUpdater",
]


def apply_sweep_delta(
    bm: Blockmodel,
    graph: Graph,
    moved_vertices: IntArray,
    moved_targets: IntArray,
    scratch_mask: np.ndarray | None = None,
) -> None:
    """Apply a batch of vertex moves to ``bm`` in O(Σ deg(moved)).

    ``moved_vertices`` must hold unique vertex ids and ``moved_targets``
    their new blocks. The result is exactly the state
    ``bm.rebuild(graph, new_assignment)`` would produce — int64
    scatter-subtract/add is exact, which the equivalence tests assert
    byte-for-byte.

    ``scratch_mask`` is an optional reusable ``(V,)`` bool buffer (all
    False on entry, restored to all False on exit) used to deduplicate
    edges between two moved vertices; without it the dedup falls back to
    ``np.isin``, keeping the call free of O(V) allocations either way.

    Edge accounting: every directed edge with at least one moved
    endpoint is collected exactly once — out-edges of the moved set,
    plus in-edges whose *source* is not itself moved (those already
    appeared as someone's out-edge). Old endpoints' blocks are gathered
    before the assignment mutates and new blocks after, so moved→moved
    edges (including self-loops) migrate from ``(old_r, old_s)`` to
    ``(new_r, new_s)`` under one consistent snapshot.
    """
    moved_vertices = np.asarray(moved_vertices, dtype=np.int64)
    moved_targets = np.asarray(moved_targets, dtype=np.int64)
    if moved_vertices.shape != moved_targets.shape or moved_vertices.ndim != 1:
        raise ValueError("moved_vertices and moved_targets must be aligned 1-D arrays")
    if moved_vertices.size == 0:
        return
    assignment = bm.assignment

    out_len = graph.out_degree[moved_vertices]
    src_out = np.repeat(moved_vertices, out_len)
    dst_out = graph.out_nbrs[expand_ranges(graph.out_ptr[moved_vertices], out_len)]

    in_len = graph.in_degree[moved_vertices]
    dst_in = np.repeat(moved_vertices, in_len)
    src_in = graph.in_nbrs[expand_ranges(graph.in_ptr[moved_vertices], in_len)]
    if scratch_mask is not None:
        scratch_mask[moved_vertices] = True
        keep = ~scratch_mask[src_in]
        scratch_mask[moved_vertices] = False
    else:
        keep = ~np.isin(src_in, moved_vertices)

    src = np.concatenate([src_out, src_in[keep]])
    dst = np.concatenate([dst_out, dst_in[keep]])

    # Snapshot the old endpoint blocks of every touched edge, then move.
    old_src_blk = assignment[src]
    old_dst_blk = assignment[dst]
    old_blocks = assignment[moved_vertices]
    assignment[moved_vertices] = moved_targets
    new_src_blk = assignment[src]
    new_dst_blk = assignment[dst]

    bm.state.scatter_edges(old_src_blk, old_dst_blk, new_src_blk, new_dst_blk)

    deg_out = graph.out_degree[moved_vertices]
    deg_in = graph.in_degree[moved_vertices]
    _K.index_sub(bm.d_out, old_blocks, deg_out)
    _K.index_add(bm.d_out, moved_targets, deg_out)
    _K.index_sub(bm.d_in, old_blocks, deg_in)
    _K.index_add(bm.d_in, moved_targets, deg_in)
    deg = deg_out + deg_in
    _K.index_sub(bm.d, old_blocks, deg)
    _K.index_add(bm.d, moved_targets, deg)


def apply_edge_delta(bm: Blockmodel, batch) -> None:
    """Apply an :class:`~repro.graph.stream.EdgeBatch` to ``bm`` in place.

    The streaming analogue of :func:`apply_sweep_delta`: where the sweep
    barrier moves vertices across blocks on a fixed graph, an edge delta
    keeps the assignment fixed and changes the graph. Both reduce to the
    same storage primitive — ``state.scatter_edges`` subtracts the
    removed edges' block pairs and adds the added edges', O(|batch|)
    instead of the O(E) recount of :meth:`Blockmodel.rebuild` against
    the new graph. Exactly equal to that recount (int64 arithmetic),
    which the streaming equivalence tests assert byte-for-byte on all
    three engines.

    ``bm`` afterwards describes the graph ``apply_edge_batch(graph,
    batch)`` returns; build that graph separately for MDL evaluation.
    A batch that grows ``num_vertices`` must have the new vertices
    already present in ``bm.assignment`` (extend the assignment and
    use :meth:`Blockmodel.from_assignment` for growth snapshots).

    Bumps ``bm.delta_epoch`` so degree/CDF caches holding pre-delta
    rows (:class:`ProposalCache`) know to drop them.
    """
    batch = batch.normalized()
    assignment = bm.assignment
    num_vertices = assignment.shape[0]
    for edges, label in ((batch.add, "added"), (batch.remove, "removed")):
        if edges.size and edges.max() >= num_vertices:
            raise ValueError(
                f"{label} edge endpoints exceed the assignment "
                f"({num_vertices} vertices); extend the assignment first"
            )
    rem_src = assignment[batch.remove[:, 0]]
    rem_dst = assignment[batch.remove[:, 1]]
    add_src = assignment[batch.add[:, 0]]
    add_dst = assignment[batch.add[:, 1]]

    bm.state.scatter_edges(rem_src, rem_dst, add_src, add_dst)

    ones_rem = np.ones(rem_src.shape[0], dtype=np.int64)
    ones_add = np.ones(add_src.shape[0], dtype=np.int64)
    _K.index_sub(bm.d_out, rem_src, ones_rem)
    _K.index_sub(bm.d_in, rem_dst, ones_rem)
    _K.index_add(bm.d_out, add_src, ones_add)
    _K.index_add(bm.d_in, add_dst, ones_add)
    _K.index_sub(bm.d, rem_src, ones_rem)
    _K.index_sub(bm.d, rem_dst, ones_rem)
    _K.index_add(bm.d, add_src, ones_add)
    _K.index_add(bm.d, add_dst, ones_add)
    bm.delta_epoch += 1


class ProposalCache:
    """Per-sweep cache of symmetrized proposal-row CDF views.

    ``row_cdf(u)`` returns the storage engine's
    :class:`~repro.sbm.block_storage.RowCDF` over ``B[u, :] + B[:, u]``
    — the exact view the uncached multinomial draw builds — computing it
    at most once per block between invalidations. An accepted move r → s
    dirties precisely the blocks whose symmetrized row contains a
    changed cell: ``{r, s}`` (their full row/column changed) plus the
    mover's neighbour blocks ``t_out ∪ t_in`` (cells ``(r|s, t)`` and
    ``(t, r|s)`` changed).

    Two invalidation protocols, chosen per storage engine:

    * **eager dirty-set** (dense, sparse): :meth:`invalidate_move` drops
      the ``{r, s} ∪ t_out ∪ t_in`` entries in O(degree).
    * **lazy row-granular** (engines with
      ``tracks_line_versions = True``, i.e. hybrid): entries carry the
      block's line version at build time and :meth:`row_cdf` revalidates
      on access, so :meth:`invalidate_move` is a no-op and a CDF is only
      rebuilt when *that block's* row or column was actually written —
      strictly fewer rebuilds than the dirty set, with identical arrays
      (staleness is impossible: the engine bumps the version inside
      every write).
    """

    __slots__ = (
        "_bm", "_cdfs", "_versioned", "_state", "_epoch", "hits", "misses",
    )

    def __init__(self, bm: Blockmodel) -> None:
        self._bm = bm
        self._versioned = bool(
            getattr(bm.state, "tracks_line_versions", False)
        )
        self._state = bm.state
        self._epoch = bm.delta_epoch
        # block -> RowCDF (eager) or block -> (version, RowCDF) (lazy).
        self._cdfs: dict[int, object] = {}
        self.hits = 0
        self.misses = 0

    def row_cdf(self, u: int) -> RowCDF:
        if self._bm.delta_epoch != self._epoch:
            # An edge delta (or rebuild) rewrote cells without a move
            # notification; every cached row may be stale. The lazy
            # protocol would catch in-place scatters via line versions,
            # but a rebuild swaps the state object and restarts its
            # counters, so the epoch guard covers both protocols.
            self._cdfs.clear()
            self._epoch = self._bm.delta_epoch
        state = self._bm.state
        if self._versioned:
            if state is not self._state:
                # A rebuild/compact swapped the state object; its version
                # counters restarted, so every stamp is meaningless.
                self._cdfs.clear()
                self._state = state
            version = state.line_version(u)
            entry = self._cdfs.get(u)
            if entry is not None and entry[0] == version:
                self.hits += 1
                return entry[1]
            self.misses += 1
            cdf = state.sym_row_cdf(u)
            self._cdfs[u] = (version, cdf)
            return cdf
        cdf = self._cdfs.get(u)
        if cdf is None:
            self.misses += 1
            cdf = state.sym_row_cdf(u)
            self._cdfs[u] = cdf
        else:
            self.hits += 1
        return cdf

    def invalidate_blocks(self, blocks) -> None:
        """Drop the cached CDFs of an iterable of block ids."""
        pop = self._cdfs.pop
        for b in blocks:
            pop(int(b), None)

    def invalidate_move(self, r: int, s: int, t_out: IntArray, t_in: IntArray) -> None:
        """Dirty-set invalidation for an applied move r → s.

        No-op under the lazy protocol: version stamps subsume it.
        """
        if self._versioned:
            return
        pop = self._cdfs.pop
        pop(int(r), None)
        pop(int(s), None)
        for b in t_out:
            pop(int(b), None)
        for b in t_in:
            pop(int(b), None)

    def clear(self) -> None:
        self._cdfs.clear()

    def __len__(self) -> int:
        return len(self._cdfs)


class _TimedUpdater(SweepUpdater):
    """Shared timing plumbing: accrue barrier time to a named sub-bucket."""

    #: PhaseTimings sub-bucket of ``rebuild`` this engine accrues to.
    timer_name = "barrier"

    def __init__(self, timers: StopwatchPool | None = None) -> None:
        self._timers = timers

    def apply_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        moved_vertices: IntArray,
        moved_targets: IntArray,
    ) -> None:
        if self._timers is None:
            self._apply(bm, graph, moved_vertices, moved_targets)
            return
        with self._timers.section(self.timer_name):
            self._apply(bm, graph, moved_vertices, moved_targets)

    def _apply(self, bm, graph, moved_vertices, moved_targets) -> None:
        raise NotImplementedError


class RebuildUpdater(_TimedUpdater):
    """The O(E) recount oracle — paper Alg. 3's original barrier."""

    name = "rebuild"
    timer_name = "barrier_rebuild"

    def _apply(self, bm, graph, moved_vertices, moved_targets) -> None:
        new_assignment = bm.assignment.copy()
        new_assignment[moved_vertices] = moved_targets
        bm.rebuild(graph, new_assignment)


class IncrementalUpdater(_TimedUpdater):
    """O(Σ deg(moved)) scatter delta-apply with an optional audit hook.

    Parameters
    ----------
    timers:
        Optional :class:`StopwatchPool`; barrier time accrues to the
        ``barrier_apply`` bucket.
    verify_every:
        Audit cadence in barrier applications: every N-th call is
        followed by a full :meth:`Blockmodel.check_consistency` recount
        through the resilience layer's :class:`InvariantAuditor`
        (0 disables). The audit never mutates a healthy state, so an
        audited run stays bit-identical.
    self_heal:
        Forwarded to the auditor: rebuild-and-log instead of raising
        when an audit finds drift.
    """

    name = "incremental"
    timer_name = "barrier_apply"

    def __init__(
        self,
        timers: StopwatchPool | None = None,
        verify_every: int = 0,
        self_heal: bool = False,
    ) -> None:
        super().__init__(timers)
        if verify_every < 0:
            raise ValueError(f"verify_every must be >= 0, got {verify_every}")
        from repro.resilience.audit import InvariantAuditor

        self.verify_every = verify_every
        self._auditor = InvariantAuditor(cadence=verify_every, self_heal=self_heal)
        self._applies = 0
        self._scratch: np.ndarray | None = None

    @property
    def audits_run(self) -> int:
        return self._auditor.audits_run

    @property
    def heals(self) -> int:
        return self._auditor.heals

    def make_proposal_cache(self, bm: Blockmodel) -> ProposalCache:
        return ProposalCache(bm)

    def apply_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        moved_vertices: IntArray,
        moved_targets: IntArray,
    ) -> None:
        super().apply_sweep(bm, graph, moved_vertices, moved_targets)
        self._applies += 1
        if self._auditor.due(self._applies):
            self._auditor.audit(bm, graph, self._applies)

    def _apply(self, bm, graph, moved_vertices, moved_targets) -> None:
        if self._scratch is None or self._scratch.shape[0] != graph.num_vertices:
            self._scratch = np.zeros(graph.num_vertices, dtype=bool)
        apply_sweep_delta(
            bm, graph, moved_vertices, moved_targets, scratch_mask=self._scratch
        )


register_update_strategy("rebuild", RebuildUpdater)
register_update_strategy("incremental", IncrementalUpdater)
