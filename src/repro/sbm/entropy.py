"""MDL objective for the degree-corrected SBM (paper Eqs. 1-2).

The paper's quality function is the minimum description length

    MDL = E * h(C^2 / E) + V * log(C) - L(G | B)            (Eq. 2)

with ``h(x) = (1 + x) log(1 + x) - x log(x)`` and the DCSBM
log-likelihood

    L(G | B) = sum_ij B_ij * log(B_ij / (d_out_i * d_in_j))  (Eq. 1)

Implementation note: expanding the logarithm gives the identity

    L = sum_ij g(B_ij) - sum_i g(d_out_i) - sum_j g(d_in_j),

with ``g(x) = x log x``, because ``sum_j B_ij = d_out_i`` and
``sum_i B_ij = d_in_j``. This form needs no division, never sees a
``log(0)`` for empty blocks, and — crucially — lets vertex-move deltas
be computed from only the O(degree) *changed* matrix cells plus four
degree terms (see :mod:`repro.sbm.delta`).
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = [
    "xlogx",
    "xlogx_counts",
    "h_binary",
    "dcsbm_log_likelihood",
    "description_length",
    "null_description_length",
    "normalized_description_length",
]


def xlogx(x: np.ndarray | float) -> np.ndarray | float:
    """Elementwise ``x * log(x)`` with the convention ``0 log 0 = 0``."""
    arr = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(arr)
    mask = arr > 0
    np.multiply(arr, np.log(arr, where=mask, out=np.zeros_like(arr)), where=mask, out=out)
    if np.ndim(x) == 0:
        return float(out)
    return out


def xlogx_counts(x: np.ndarray) -> np.ndarray:
    """Vectorized ``x log x`` over non-negative count arrays.

    The delta-MDL kernels (:mod:`repro.sbm.delta`) and the batch sweep
    backend (:mod:`repro.parallel.vectorized`) evaluate this on every
    changed blockmodel cell; it is the single canonical implementation
    both import so serial and vectorized paths share bit-identical
    rounding. Unlike :func:`xlogx` it always returns an array (no scalar
    unwrapping), which keeps it allocation-minimal on the hot path.
    """
    arr = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(arr)
    mask = arr > 0
    np.multiply(arr, np.log(arr, where=mask, out=np.zeros_like(arr)), where=mask, out=out)
    return out


def h_binary(x: float) -> float:
    """The paper's ``h(x) = (1 + x) log(1 + x) - x log(x)`` (Eq. 2)."""
    if x < 0:
        raise ValueError(f"h(x) requires x >= 0, got {x}")
    if x == 0.0:
        return 0.0
    return float((1.0 + x) * np.log1p(x) - x * np.log(x))


def dcsbm_log_likelihood(
    B: np.ndarray, d_out: FloatArray | np.ndarray, d_in: FloatArray | np.ndarray
) -> float:
    """DCSBM log-likelihood L(G|B) of Eq. 1, in nats.

    Parameters
    ----------
    B:
        Inter-block edge-count matrix of shape (C, C).
    d_out, d_in:
        Block out-/in-degree vectors; must equal the row/column sums of
        ``B`` (not checked here for speed; the Blockmodel maintains it).
    """
    return float(np.sum(xlogx(B)) - np.sum(xlogx(d_out)) - np.sum(xlogx(d_in)))


def description_length(
    num_edges: int,
    num_vertices: int,
    B: np.ndarray,
    d_out: np.ndarray,
    d_in: np.ndarray,
    num_blocks: int | None = None,
) -> float:
    """Full MDL of Eq. 2 for a blockmodel over a graph with V, E known.

    ``num_blocks`` defaults to the matrix dimension; pass the number of
    *non-empty* blocks to price only occupied communities.
    """
    if num_blocks is None:
        num_blocks = B.shape[0]
    if num_edges == 0:
        return 0.0
    model_cost = num_edges * h_binary(num_blocks**2 / num_edges)
    label_cost = num_vertices * np.log(num_blocks) if num_blocks > 0 else 0.0
    return float(model_cost + label_cost - dcsbm_log_likelihood(B, d_out, d_in))


def null_description_length(num_edges: int, num_vertices: int) -> float:
    """MDL of the structure-less null model (every vertex in one block).

    The paper normalizes MDL by this quantity (§4.2): with C = 1 the
    blockmodel is ``B = [[E]]`` and ``d_out = d_in = [E]``, so
    ``L = -E log E`` and ``MDL_null = E h(1/E) + E log E``.
    """
    if num_edges == 0:
        return 0.0
    return float(num_edges * h_binary(1.0 / num_edges) + num_edges * np.log(num_edges))


def normalized_description_length(mdl: float, num_edges: int, num_vertices: int) -> float:
    """``MDL / MDL_null`` — the paper's MDL^norm quality score.

    Values near (or above) 1.0 mean the fitted blockmodel describes the
    graph no better than "everything in one community"; lower is better.
    """
    null = null_description_length(num_edges, num_vertices)
    if null == 0.0:
        return float("nan")
    return float(mdl / null)
