"""Degree-corrected stochastic blockmodel state and MDL computations."""

from repro.sbm.block_storage import (
    BlockState,
    DenseBlockState,
    RowCDF,
    SparseBlockState,
    available_block_storages,
    get_block_storage,
    register_block_storage,
)
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import (
    xlogx,
    h_binary,
    dcsbm_log_likelihood,
    description_length,
    null_description_length,
    normalized_description_length,
)
from repro.sbm.delta import (
    VertexMoveContext,
    vertex_move_context,
    vertex_move_delta,
    hastings_correction,
    merge_delta,
)
from repro.sbm.moves import propose_vertex_move, propose_block_merge, accept_probability
from repro.sbm.incremental import (
    ProposalCache,
    RebuildUpdater,
    IncrementalUpdater,
    apply_sweep_delta,
    apply_edge_delta,
)

__all__ = [
    "BlockState",
    "DenseBlockState",
    "SparseBlockState",
    "RowCDF",
    "register_block_storage",
    "get_block_storage",
    "available_block_storages",
    "Blockmodel",
    "xlogx",
    "h_binary",
    "dcsbm_log_likelihood",
    "description_length",
    "null_description_length",
    "normalized_description_length",
    "VertexMoveContext",
    "vertex_move_context",
    "vertex_move_delta",
    "hastings_correction",
    "merge_delta",
    "propose_vertex_move",
    "propose_block_merge",
    "accept_probability",
    "ProposalCache",
    "RebuildUpdater",
    "IncrementalUpdater",
    "apply_sweep_delta",
    "apply_edge_delta",
]
