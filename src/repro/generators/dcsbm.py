"""Degree-corrected SBM graph sampler (replaces graph-tool's generator).

Directed multigraph sampling: every vertex carries out-/in-degree
propensities drawn from a bounded power law; edge sources are the
out-stub list; each edge's target community is drawn from a planted
partition with within:between ratio ``r`` (degree-corrected by the
target communities' in-propensity mass), and the target vertex is drawn
proportionally to in-propensity within the community. ``r = 1``
degenerates to a pure degree-corrected random graph with no community
structure — exactly the "little community structure" regime where the
paper's algorithms (rightly) fail to converge.

Like graph-tool's ``generate_sbm``, the sampler is stochastic and only
approximately realizes the requested degree sequence and ratio (the
paper notes the same caveat for Table 1). Self-loops are rejected and
dropped (one resample attempt each), matching the unweighted directed
simple-ish graphs of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeneratorError
from repro.generators.degree import rescale_to_mean, sample_power_law_degrees
from repro.generators.partition import sample_memberships
from repro.graph.graph import Graph
from repro.types import Assignment
from repro.utils.rng import philox_stream

__all__ = ["DCSBMParams", "generate_dcsbm"]


@dataclass(frozen=True)
class DCSBMParams:
    """Inputs to the DCSBM sampler (mirrors the paper's §4.1 knobs)."""

    num_vertices: int
    num_communities: int
    within_between_ratio: float  #: the paper's r
    degree_exponent: float = 2.5
    d_min: int = 1
    d_max: int = 20
    mean_degree: float | None = None  #: out-degree mean; None keeps the raw power law
    size_concentration: float = 10.0

    def validate(self) -> None:
        if self.num_vertices < 2:
            raise GeneratorError("num_vertices must be >= 2")
        if self.num_communities < 1:
            raise GeneratorError("num_communities must be >= 1")
        if self.within_between_ratio < 0:
            raise GeneratorError("within_between_ratio (r) must be >= 0")


def generate_dcsbm(params: DCSBMParams, seed: int = 0) -> tuple[Graph, Assignment]:
    """Sample a directed DCSBM graph; returns (graph, ground-truth labels)."""
    params.validate()
    rng = philox_stream(seed, 0xD05B)

    membership = sample_memberships(
        rng, params.num_vertices, params.num_communities, params.size_concentration
    )

    out_prop = sample_power_law_degrees(
        rng, params.num_vertices, params.degree_exponent, params.d_min, params.d_max
    )
    in_prop = sample_power_law_degrees(
        rng, params.num_vertices, params.degree_exponent, params.d_min, params.d_max
    )
    if params.mean_degree is not None:
        out_prop = rescale_to_mean(out_prop, params.mean_degree)
        in_prop = rescale_to_mean(in_prop, params.mean_degree)

    sources = np.repeat(
        np.arange(params.num_vertices, dtype=np.int64), out_prop
    )
    rng.shuffle(sources)
    targets = _sample_targets(rng, sources, membership, in_prop, params)

    # Drop self-loops after one resample attempt.
    loops = sources == targets
    if loops.any():
        targets[loops] = _sample_targets(
            rng, sources[loops], membership, in_prop, params
        )
        keep = sources != targets
        sources, targets = sources[keep], targets[keep]

    edges = np.stack([sources, targets], axis=1)
    return Graph(params.num_vertices, edges), membership


def _sample_targets(
    rng: np.random.Generator,
    sources: np.ndarray,
    membership: Assignment,
    in_prop: np.ndarray,
    params: DCSBMParams,
) -> np.ndarray:
    """Draw a target vertex for every source edge stub."""
    K = params.num_communities
    r = params.within_between_ratio

    # In-propensity mass per community (degree correction).
    mass = np.bincount(membership, weights=in_prop.astype(np.float64), minlength=K)
    if (mass <= 0).any():
        # Guarantee every community is reachable.
        mass = mass + 1e-9

    # Community-to-community target weights: within edges boosted by r.
    weight = np.tile(mass, (K, 1))
    diag = np.arange(K)
    weight[diag, diag] *= max(r, 1e-12)
    row_cdf = np.cumsum(weight, axis=1)
    row_tot = row_cdf[:, -1]

    src_comm = membership[sources]
    u = rng.random(sources.shape[0])
    # Vectorized per-row inverse-CDF: searchsorted each source against its
    # community's CDF row, grouped by community.
    tgt_comm = np.empty(sources.shape[0], dtype=np.int64)
    for a in range(K):
        sel = np.nonzero(src_comm == a)[0]
        if sel.size == 0:
            continue
        tgt_comm[sel] = np.searchsorted(
            row_cdf[a], u[sel] * row_tot[a], side="right"
        )
    np.clip(tgt_comm, 0, K - 1, out=tgt_comm)

    # Draw the vertex within each target community, in-propensity weighted.
    targets = np.empty(sources.shape[0], dtype=np.int64)
    u2 = rng.random(sources.shape[0])
    for b in range(K):
        sel = np.nonzero(tgt_comm == b)[0]
        if sel.size == 0:
            continue
        members = np.nonzero(membership == b)[0]
        w = in_prop[members].astype(np.float64)
        if w.sum() <= 0:
            w = np.ones(members.shape[0])
        cdf = np.cumsum(w)
        idx = np.searchsorted(cdf, u2[sel] * cdf[-1], side="right")
        np.clip(idx, 0, members.shape[0] - 1, out=idx)
        targets[sel] = members[idx]
    return targets
