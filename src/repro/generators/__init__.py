"""Synthetic graph generators: DCSBM sampler, Table 1 corpus, Table 2 stand-ins."""

from repro.generators.degree import sample_power_law_degrees, power_law_pmf
from repro.generators.partition import sample_memberships
from repro.generators.dcsbm import DCSBMParams, generate_dcsbm
from repro.generators.corpus import (
    SyntheticSpec,
    SYNTHETIC_SPECS,
    generate_synthetic,
    corpus_ids,
)
from repro.generators.realworld import (
    RealWorldSpec,
    REAL_WORLD_SPECS,
    generate_real_world_standin,
    real_world_ids,
)

__all__ = [
    "sample_power_law_degrees",
    "power_law_pmf",
    "sample_memberships",
    "DCSBMParams",
    "generate_dcsbm",
    "SyntheticSpec",
    "SYNTHETIC_SPECS",
    "generate_synthetic",
    "corpus_ids",
    "RealWorldSpec",
    "REAL_WORLD_SPECS",
    "generate_real_world_standin",
    "real_world_ids",
]
