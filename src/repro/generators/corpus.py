"""The synthetic evaluation corpus — a scaled reproduction of Table 1.

The paper generates 24 DCSBM graphs organized as three within:between
ratio groups (r = 5, 3, 1), each containing four sparse (E/V ~ 1.6-2.2)
and four dense (E/V ~ 20-28) degree-profile variants. The absolute
scale (V ~ 2x10^5) is infeasible for a pure-Python MCMC, so this corpus
keeps the *relative* structure at V ~ 250-300 (DESIGN.md §4,
substitution 3): the r-groups, the sparse/dense split and the four
degree-shape variants are preserved, which is what drives the paper's
convergence findings (A-SBP failing on low-r sparse graphs, everything
failing at r = 1 sparse).

``REDACTED_IDS`` mirrors the six graphs the paper drops from its figures
because no algorithm converged on them (§5: S1, S3 and the sparse r=1
family S17-S20).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeneratorError
from repro.generators.dcsbm import DCSBMParams, generate_dcsbm
from repro.graph.graph import Graph
from repro.types import Assignment

__all__ = [
    "SyntheticSpec",
    "SYNTHETIC_SPECS",
    "REDACTED_IDS",
    "corpus_ids",
    "generate_synthetic",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """One corpus entry: generator parameters plus its Table 1 identity.

    ``r`` is the paper's labeled within:between ratio; ``gen_ratio`` is
    the per-pair rate ratio handed to our DCSBM sampler. The two differ
    because graph-tool's generator (used by the paper) boosts within
    edges more aggressively than a bare rate ratio; the mapping is
    calibrated so that at this corpus' scale the r = 5 family is clearly
    detectable, r = 3 is marginal and r = 1 is structure-less — the same
    detectability ordering the paper's Table 1 realizes at 200k vertices.
    """

    graph_id: str
    r: float
    gen_ratio: float
    dense: bool
    num_vertices: int
    num_communities: int
    mean_degree: float
    degree_exponent: float
    d_min: int
    d_max: int

    def params(self) -> DCSBMParams:
        return DCSBMParams(
            num_vertices=self.num_vertices,
            num_communities=self.num_communities,
            within_between_ratio=self.gen_ratio,
            degree_exponent=self.degree_exponent,
            d_min=self.d_min,
            d_max=self.d_max,
            mean_degree=self.mean_degree,
        )


# Four degree-shape variants per (r, density) group, following Table 1's
# within-group E variation: variants 1/3 are the lowest-density shapes
# (the paper's S1/S3 — the two redacted r=5 graphs — are exactly those).
_SPARSE_VARIANTS = [
    # (mean out-degree, exponent, d_min, d_max)
    (3.2, 2.9, 1, 10),
    (6.0, 2.5, 1, 16),
    (3.4, 2.1, 1, 10),
    (6.5, 2.3, 1, 20),
]
_DENSE_VARIANTS = [
    (18.0, 2.5, 2, 40),
    (24.0, 2.1, 2, 40),
    (20.0, 2.3, 2, 40),
    (26.0, 1.9, 2, 40),
]

_SPARSE_V, _SPARSE_C = 300, 4
_DENSE_V, _DENSE_C = 250, 8

#: paper-labeled r -> per-pair rate ratio for our sampler (see docstring).
_GEN_RATIO = {5.0: 8.0, 3.0: 4.5, 1.0: 1.0}


def _build_specs() -> dict[str, SyntheticSpec]:
    specs: dict[str, SyntheticSpec] = {}
    graph_num = 1
    for r in (5.0, 3.0, 1.0):
        for dense in (False, True):
            variants = _DENSE_VARIANTS if dense else _SPARSE_VARIANTS
            for mean_degree, exponent, d_min, d_max in variants:
                gid = f"S{graph_num}"
                specs[gid] = SyntheticSpec(
                    graph_id=gid,
                    r=r,
                    gen_ratio=_GEN_RATIO[r],
                    dense=dense,
                    num_vertices=_DENSE_V if dense else _SPARSE_V,
                    num_communities=_DENSE_C if dense else _SPARSE_C,
                    mean_degree=mean_degree,
                    degree_exponent=exponent,
                    d_min=d_min,
                    d_max=d_max,
                )
                graph_num += 1
    return specs


#: S1..S24, keyed by graph id.
SYNTHETIC_SPECS: dict[str, SyntheticSpec] = _build_specs()

#: Graphs the paper redacts from Figs. 4/8 (no algorithm converges).
REDACTED_IDS: frozenset[str] = frozenset({"S1", "S3", "S17", "S18", "S19", "S20"})


def corpus_ids(include_redacted: bool = False) -> list[str]:
    """Corpus ids in S1..S24 order, optionally dropping the redacted six."""
    ids = sorted(SYNTHETIC_SPECS, key=lambda g: int(g[1:]))
    if include_redacted:
        return ids
    return [g for g in ids if g not in REDACTED_IDS]


def generate_synthetic(graph_id: str, seed: int = 0) -> tuple[Graph, Assignment]:
    """Generate corpus graph ``graph_id`` (e.g. 'S5'); deterministic per seed."""
    spec = SYNTHETIC_SPECS.get(graph_id)
    if spec is None:
        raise GeneratorError(
            f"unknown synthetic graph id {graph_id!r}; expected S1..S24"
        )
    # Mix the graph number into the seed so each corpus entry gets an
    # independent stream (str hash() is process-salted, so not used).
    return generate_dcsbm(spec.params(), seed=seed ^ (int(graph_id[1:]) * 0x9E3779B1))
