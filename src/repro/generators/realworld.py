"""Synthetic stand-ins for the paper's Table 2 real-world graphs.

The paper evaluates on 14 unweighted directed SuiteSparse graphs. This
environment has no network access, so each graph is replaced by a DCSBM
stand-in with (DESIGN.md §4, substitution 2):

* scaled vertex count (V ~ 140-660),
* the original's edge density E/V (capped at 20 for tractability),
* a domain-typical degree profile (web/social graphs heavy-tailed,
  the ``barth5`` mesh near-regular),
* a domain-typical community strength ``r`` — notably ``r = 1`` for
  ``p2p-Gnutella31``, whose lack of community structure the paper calls
  out (all three algorithms fail, MDL_norm > 1), and weak structure for
  ``barth5`` (the paper's iteration-count outlier).

Ground-truth labels exist internally (the generator knows them) but are
*not* returned: like the paper, quality on these graphs is assessed via
normalized MDL and modularity only.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import GeneratorError
from repro.generators.dcsbm import DCSBMParams, generate_dcsbm
from repro.graph.graph import Graph

__all__ = [
    "RealWorldSpec",
    "REAL_WORLD_SPECS",
    "real_world_ids",
    "generate_real_world_standin",
]


@dataclass(frozen=True)
class RealWorldSpec:
    """Stand-in parameters plus the original graph's Table 2 identity."""

    name: str
    domain: str
    paper_vertices: int   #: V of the original SuiteSparse graph
    paper_edges: int      #: E of the original SuiteSparse graph
    num_vertices: int     #: scaled stand-in V
    mean_degree: float    #: stand-in E/V (capped at 20)
    num_communities: int
    r: float
    degree_exponent: float
    d_min: int
    d_max: int

    def params(self) -> DCSBMParams:
        return DCSBMParams(
            num_vertices=self.num_vertices,
            num_communities=self.num_communities,
            within_between_ratio=self.r,
            degree_exponent=self.degree_exponent,
            d_min=self.d_min,
            d_max=self.d_max,
            mean_degree=self.mean_degree,
        )


def _spec(
    name: str,
    domain: str,
    paper_v: int,
    paper_e: int,
    sim_v: int,
    communities: int,
    r: float,
    exponent: float,
    d_min: int = 1,
    d_max: int = 40,
) -> RealWorldSpec:
    density = min(paper_e / paper_v, 20.0)
    return RealWorldSpec(
        name=name,
        domain=domain,
        paper_vertices=paper_v,
        paper_edges=paper_e,
        num_vertices=sim_v,
        mean_degree=density,
        num_communities=communities,
        r=r,
        degree_exponent=exponent,
        d_min=d_min,
        d_max=d_max,
    )


#: Table 2 graphs, in the paper's order.
REAL_WORLD_SPECS: dict[str, RealWorldSpec] = {
    s.name: s
    for s in [
        _spec("rajat01", "circuit", 6847, 43262, 140, 6, 7.0, 2.8, 2, 24),
        _spec("wiki-Vote", "social", 7115, 103689, 150, 6, 5.0, 2.0, 1, 40),
        _spec("barth5", "mesh", 15622, 61498, 200, 4, 9.0, 4.0, 2, 8),
        _spec("cit-HepTh", "citation", 27770, 352807, 240, 8, 6.0, 2.3, 1, 40),
        _spec("p2p-Gnutella31", "p2p", 62586, 147892, 320, 8, 1.0, 2.6, 1, 20),
        _spec("soc-Epinions1", "social", 75879, 508837, 340, 6, 7.0, 2.1, 1, 40),
        _spec("soc-Slashdot0902", "social", 82168, 948464, 360, 6, 5.0, 2.0, 1, 40),
        _spec("cnr-2000", "web", 325557, 3216152, 500, 10, 9.0, 2.1, 1, 40),
        _spec("amazon0505", "co-purchase", 410236, 3356824, 520, 10, 10.0, 2.6, 2, 24),
        _spec("higgs-twitter", "social", 456626, 14855842, 540, 10, 6.0, 1.9, 1, 48),
        _spec("Stanford-Berkeley", "web", 683446, 7583376, 600, 12, 9.0, 2.0, 1, 48),
        _spec("web-BerkStan", "web", 685230, 7600595, 620, 12, 9.0, 2.0, 1, 48),
        _spec("amazon-2008", "book-similarity", 735323, 5158388, 640, 12, 10.0, 2.6, 2, 24),
        _spec("flickr", "social", 820878, 9837214, 660, 12, 7.0, 2.0, 1, 48),
    ]
}


def real_world_ids() -> list[str]:
    """Stand-in names in Table 2 order."""
    return list(REAL_WORLD_SPECS)


def generate_real_world_standin(name: str, seed: int = 0) -> Graph:
    """Generate the stand-in for Table 2 graph ``name``.

    Ground truth is intentionally discarded (the paper treats these as
    unlabeled graphs).
    """
    spec = REAL_WORLD_SPECS.get(name)
    if spec is None:
        raise GeneratorError(
            f"unknown real-world graph {name!r}; known: {real_world_ids()}"
        )
    salt = zlib.crc32(name.encode()) & 0x7FFF_FFFF
    graph, _truth = generate_dcsbm(spec.params(), seed=seed ^ salt)
    return graph
