"""Community membership sampling for planted-partition graphs."""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorError
from repro.types import Assignment

__all__ = ["sample_memberships"]


def sample_memberships(
    rng: np.random.Generator,
    num_vertices: int,
    num_communities: int,
    size_concentration: float = 10.0,
) -> Assignment:
    """Assign vertices to communities with Dirichlet-distributed sizes.

    ``size_concentration`` controls size variation: large values give
    near-equal communities, small values highly skewed ones (the paper
    notes SBP shines on graphs with "a high variation of community
    sizes"). Every community is guaranteed at least one vertex.
    """
    if num_communities < 1:
        raise GeneratorError(f"num_communities must be >= 1, got {num_communities}")
    if num_communities > num_vertices:
        raise GeneratorError(
            f"cannot place {num_vertices} vertices into {num_communities} communities"
        )
    if size_concentration <= 0:
        raise GeneratorError("size_concentration must be > 0")

    proportions = rng.dirichlet(np.full(num_communities, size_concentration))
    assignment = rng.choice(
        num_communities, size=num_vertices, p=proportions
    ).astype(np.int64)

    # Guarantee non-empty communities by reassigning from the largest.
    sizes = np.bincount(assignment, minlength=num_communities)
    empties = np.nonzero(sizes == 0)[0]
    for community in empties:
        donor = int(np.argmax(np.bincount(assignment, minlength=num_communities)))
        victims = np.nonzero(assignment == donor)[0]
        assignment[victims[0]] = community
    return assignment
