"""Bounded discrete power-law degree sampling.

The paper's Table 1 graphs vary "minimum and maximum vertex degree [and
the] power law exponent of the degree distribution" (§4.1); this module
is the corresponding knob. Real-world degree distributions follow the
power law (paper §3.2, citing Aiello et al.), which is also what makes
the H-SBP V*/V- split effective — few vertices hold most of the degree
mass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorError
from repro.types import FloatArray, IntArray

__all__ = ["power_law_pmf", "sample_power_law_degrees", "rescale_to_mean"]


def power_law_pmf(exponent: float, d_min: int, d_max: int) -> tuple[IntArray, FloatArray]:
    """Support and pmf of ``P(k) ~ k^-exponent`` on ``[d_min, d_max]``."""
    if d_min < 1:
        raise GeneratorError(f"d_min must be >= 1, got {d_min}")
    if d_max < d_min:
        raise GeneratorError(f"d_max ({d_max}) must be >= d_min ({d_min})")
    support = np.arange(d_min, d_max + 1, dtype=np.int64)
    weights = support.astype(np.float64) ** (-float(exponent))
    pmf = weights / weights.sum()
    return support, pmf


def sample_power_law_degrees(
    rng: np.random.Generator,
    count: int,
    exponent: float,
    d_min: int,
    d_max: int,
) -> IntArray:
    """Sample ``count`` degrees from the bounded power law."""
    support, pmf = power_law_pmf(exponent, d_min, d_max)
    return rng.choice(support, size=count, p=pmf).astype(np.int64)


def rescale_to_mean(degrees: IntArray, target_mean: float) -> IntArray:
    """Scale a degree sequence to a target mean, keeping the shape.

    Values are scaled multiplicatively, rounded, and floored at 1 so no
    vertex becomes isolated by the rescale. Used when a corpus spec
    pins the edge density (E/V) independently of the power-law shape.
    """
    if target_mean <= 0:
        raise GeneratorError(f"target_mean must be > 0, got {target_mean}")
    current = float(degrees.mean())
    if current <= 0:
        raise GeneratorError("cannot rescale an all-zero degree sequence")
    scaled = np.maximum(1, np.rint(degrees * (target_mean / current))).astype(np.int64)
    return scaled
