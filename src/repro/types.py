"""Shared type aliases and small dataclasses used across the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "IntArray",
    "FloatArray",
    "Assignment",
    "EdgeList",
    "PhaseTimings",
    "SweepStats",
]

#: 1-D or 2-D array of integer counts / indices.
IntArray: TypeAlias = npt.NDArray[np.int64]

#: 1-D or 2-D array of floats.
FloatArray: TypeAlias = npt.NDArray[np.float64]

#: Community membership vector: ``assignment[v]`` is the block of vertex v.
Assignment: TypeAlias = npt.NDArray[np.int64]

#: Edge list of shape (E, 2) with columns (source, target).
EdgeList: TypeAlias = npt.NDArray[np.int64]


@dataclass
class PhaseTimings:
    """Accumulated wall-clock time per algorithm phase, in seconds.

    The ICPP'22 paper reports its Fig. 2 breakdown (MCMC vs block-merge +
    other) and all speedup numbers from exactly these accumulators.

    ``merge_scan`` and ``merge_apply`` are sub-buckets of
    ``block_merge`` (already included in it, so excluded from ``total``):
    the embarrassingly parallel candidate scan — the part the merge
    backends accelerate — versus the sequential sort/union-find/rebuild
    tail of Alg. 1.

    ``barrier_rebuild`` and ``barrier_apply`` are likewise sub-buckets
    of ``rebuild``, splitting the per-sweep synchronization barrier by
    update strategy: a full O(E) blockmodel recount (the ``rebuild``
    engine) versus the O(Σ deg(moved)) scatter delta-apply (the
    ``incremental`` engine). A run uses one engine, so at most one
    bucket is non-zero — the Fig. 2 breakdown reads them to show where
    the barrier time went.

    ``peak_rss_bytes``, ``b_nnz`` and ``b_density`` are memory *gauges*,
    not accumulators: peak process RSS sampled at the end of the run,
    and the final blockmodel's inter-block-matrix non-zero count and
    density. ``merged_with`` keeps the max (a best-of protocol's peak is
    the max over member runs), unlike the time buckets which sum.

    ``sampling`` and ``extension`` are the SamBaS front-end stages
    (:mod:`repro.sampling`): drawing + fitting the sample (the whole
    sample-graph search, including its own merge/MCMC time) and the
    membership-extension pass. Both are *extra* top-level stages, so
    they are included in ``total``. ``finetune`` is a sub-bucket: the
    warm-started full-graph search *is* the run whose
    block_merge/mcmc/rebuild/other buckets this object already holds,
    so ``finetune`` (their sum) is excluded from ``total`` and exists
    only to let reports split full-graph time from front-end time. All
    three are zero for plain (``sample_rate=1.0``) runs and sum under
    ``merged_with``.

    The ``comm_*`` counters are the distributed runtime's wire report
    (zero for single-process backends): point-to-point messages and
    total bytes framed onto the transport, frame retransmissions
    (injected or real faults masked by the reliable layer), received
    frames quarantined for failing checksum/structure validation, and
    shard re-lease events (each one a dead rank whose vertices moved to
    survivors). They sum under ``merged_with`` like the time buckets —
    a best-of protocol's traffic is the total over member runs.
    """

    block_merge: float = 0.0
    mcmc: float = 0.0
    rebuild: float = 0.0
    other: float = 0.0
    merge_scan: float = 0.0
    merge_apply: float = 0.0
    barrier_rebuild: float = 0.0
    barrier_apply: float = 0.0
    sampling: float = 0.0
    extension: float = 0.0
    finetune: float = 0.0
    peak_rss_bytes: int = 0
    b_nnz: int = 0
    b_density: float = 0.0
    comm_messages: int = 0
    comm_bytes: int = 0
    comm_retries: int = 0
    frames_quarantined: int = 0
    shard_releases: int = 0

    @property
    def total(self) -> float:
        return (
            self.block_merge
            + self.mcmc
            + self.rebuild
            + self.other
            + self.sampling
            + self.extension
        )

    @property
    def mcmc_fraction(self) -> float:
        """Fraction of total runtime spent in the MCMC phase (Fig. 2)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return (self.mcmc + self.rebuild) / total

    def merged_with(self, other: "PhaseTimings") -> "PhaseTimings":
        return PhaseTimings(
            block_merge=self.block_merge + other.block_merge,
            mcmc=self.mcmc + other.mcmc,
            rebuild=self.rebuild + other.rebuild,
            other=self.other + other.other,
            merge_scan=self.merge_scan + other.merge_scan,
            merge_apply=self.merge_apply + other.merge_apply,
            barrier_rebuild=self.barrier_rebuild + other.barrier_rebuild,
            barrier_apply=self.barrier_apply + other.barrier_apply,
            sampling=self.sampling + other.sampling,
            extension=self.extension + other.extension,
            finetune=self.finetune + other.finetune,
            peak_rss_bytes=max(self.peak_rss_bytes, other.peak_rss_bytes),
            b_nnz=max(self.b_nnz, other.b_nnz),
            b_density=max(self.b_density, other.b_density),
            comm_messages=self.comm_messages + other.comm_messages,
            comm_bytes=self.comm_bytes + other.comm_bytes,
            comm_retries=self.comm_retries + other.comm_retries,
            frames_quarantined=self.frames_quarantined + other.frames_quarantined,
            shard_releases=self.shard_releases + other.shard_releases,
        )


@dataclass
class SweepStats:
    """Per-sweep bookkeeping emitted by the MCMC kernels.

    Attributes
    ----------
    proposals:
        Number of vertex moves proposed during the sweep.
    accepted:
        Number of proposals accepted.
    delta_mdl:
        Change in full MDL over the sweep (new - old); negative is better.
    serial_work:
        Work units (degree-weighted proposal evaluations) executed in the
        inherently serial portion of the sweep.
    parallel_work:
        Work units executed in the parallelizable portion of the sweep.
    barrier_moved:
        Number of vertices whose block changed at the sweep's
        synchronization barrier (the moved set the update engine must
        reconcile). Serial in-place passes apply moves immediately and
        contribute 0; for async/batched/hybrid sweeps this is the size
        of the delta the barrier pays for — the quantity the
        ``incremental`` engine's cost is proportional to.
    work_per_vertex:
        Optional per-vertex work-unit vector for the parallel portion,
        consumed by the simulated thread executor (Fig. 7).
    b_nnz, b_density:
        Gauges sampled after the sweep's barrier: non-zero cells of the
        inter-block matrix and their fraction of C^2. Tracks how sparse
        the matrix the storage engines hold actually is as the
        agglomeration coarsens.
    """

    proposals: int = 0
    accepted: int = 0
    delta_mdl: float = 0.0
    serial_work: float = 0.0
    parallel_work: float = 0.0
    barrier_moved: int = 0
    b_nnz: int = 0
    b_density: float = 0.0
    work_per_vertex: IntArray | None = field(default=None, repr=False)

    @property
    def acceptance_rate(self) -> float:
        if self.proposals == 0:
            return 0.0
        return self.accepted / self.proposals

    def without_work(self) -> "SweepStats":
        """A copy with the per-vertex work vector dropped.

        The scalar counters cost a few bytes per sweep and are always
        kept; the O(V) ``work_per_vertex`` vector is only retained when
        the caller opted into ``record_work`` (the simulated thread
        executor needs it, long diagnostic logs do not).
        """
        return SweepStats(
            proposals=self.proposals,
            accepted=self.accepted,
            delta_mdl=self.delta_mdl,
            serial_work=self.serial_work,
            parallel_work=self.parallel_work,
            barrier_moved=self.barrier_moved,
            b_nnz=self.b_nnz,
            b_density=self.b_density,
        )
