"""Golden-section ("Fibonacci") search over the number of communities.

SBP does not know the true number of communities C. The agglomerative
loop halves C until the MDL stops improving, which brackets the optimum
between a larger-C and a smaller-C partition; a golden-section search
then narrows the bracket (paper Fig. 1, "Search for number of
communities"; semantics follow the GraphChallenge baseline the paper
builds on).

The search keeps three anchor partitions: index 0 — smallest MDL seen at
a *larger* C than the best, 1 — the best, 2 — at a *smaller* C. Each
candidate (partition, MDL) updates the triplet, and the search then
prescribes where to evaluate next: which stored partition to start from
and how many blocks to merge away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sbm.blockmodel import Blockmodel

__all__ = ["GoldenSectionSearch", "SearchStep"]

_GOLDEN = 0.61803399


@dataclass
class _Anchor:
    bm: Blockmodel | None = None
    mdl: float = float("inf")

    @property
    def num_blocks(self) -> int:
        return -1 if self.bm is None else self.bm.num_blocks


@dataclass
class SearchStep:
    """Prescription for the next agglomerative iteration."""

    start: Blockmodel | None
    num_merges: int
    done: bool
    target_blocks: int = -1


@dataclass
class GoldenSectionSearch:
    """Stateful search over C; feed candidates via :meth:`update`."""

    reduction_rate: float = 0.5
    min_blocks: int = 1
    _anchors: list[_Anchor] = field(
        default_factory=lambda: [_Anchor(), _Anchor(), _Anchor()]
    )

    @property
    def bracket_established(self) -> bool:
        """True once a smaller-C anchor exists (switches thresholds)."""
        return self._anchors[2].bm is not None

    @property
    def best(self) -> Blockmodel:
        bm = self._anchors[1].bm
        if bm is None:
            raise RuntimeError("no candidate partitions seen yet")
        return bm

    @property
    def best_mdl(self) -> float:
        return self._anchors[1].mdl

    def export_anchors(self) -> list[tuple[Blockmodel | None, float]]:
        """Snapshot the anchor triplet for checkpointing.

        Blockmodels are copied, so the caller may persist them while the
        search keeps running.
        """
        return [
            (None if a.bm is None else a.bm.copy(), a.mdl) for a in self._anchors
        ]

    def restore_anchors(
        self, anchors: list[tuple[Blockmodel | None, float]]
    ) -> None:
        """Restore a triplet produced by :meth:`export_anchors` (resume)."""
        if len(anchors) != 3:
            raise ValueError(f"expected 3 anchors, got {len(anchors)}")
        self._anchors = [
            _Anchor(bm if bm is None else bm.copy(), mdl) for bm, mdl in anchors
        ]

    def update(self, bm: Blockmodel, mdl: float) -> SearchStep:
        """Record a candidate and prescribe the next evaluation.

        The candidate blockmodel is copied into the anchor set; callers
        may keep mutating their instance.
        """
        self._place(bm.copy(), mdl)
        a = self._anchors

        if not self.bracket_established:
            # Exponential reduction stage: keep shrinking from the best.
            base = a[1]
            current = base.num_blocks
            target = max(self.min_blocks, round(current * self.reduction_rate))
            num_merges = current - target
            if num_merges <= 0:
                return SearchStep(start=None, num_merges=0, done=True)
            return SearchStep(
                start=base.bm.copy() if base.bm is not None else None,
                num_merges=num_merges,
                done=False,
                target_blocks=target,
            )

        # Golden-section stage: the optimum lies in (a[2].C, a[0].C).
        hi, mid, lo = a[0].num_blocks, a[1].num_blocks, a[2].num_blocks
        if hi - lo <= 2:
            return SearchStep(start=None, num_merges=0, done=True)
        upper_gap = hi - mid
        lower_gap = mid - lo
        if upper_gap >= lower_gap:
            target = mid + round(_GOLDEN * upper_gap)
            start = a[0].bm
        else:
            target = mid - round(_GOLDEN * lower_gap)
            start = a[1].bm
        assert start is not None
        num_merges = start.num_blocks - target
        if num_merges <= 0 or target < self.min_blocks:
            return SearchStep(start=None, num_merges=0, done=True)
        return SearchStep(
            start=start.copy(), num_merges=num_merges, done=False, target_blocks=target
        )

    def _place(self, bm: Blockmodel, mdl: float) -> None:
        a = self._anchors
        if mdl <= a[1].mdl:
            old_best = a[1]
            if old_best.bm is not None:
                if old_best.num_blocks > bm.num_blocks:
                    a[0] = old_best
                elif old_best.num_blocks < bm.num_blocks:
                    a[2] = old_best
                # equal C: the improved partition simply replaces the best
            a[1] = _Anchor(bm, mdl)
        else:
            if a[1].bm is not None and bm.num_blocks < a[1].num_blocks:
                a[2] = _Anchor(bm, mdl)
            else:
                a[0] = _Anchor(bm, mdl)
