"""Block-merge phase (paper Alg. 1).

For every block, a handful of merge candidates are proposed and the best
(lowest delta-MDL) is kept; candidates are evaluated against the
*unmodified* blockmodel ("embarrassingly parallel until the sort"), then
the globally best merges are applied greedily — following merge chains
with a union-find — until the block count reaches the target.

The candidate scan is delegated to a :class:`~repro.parallel.backend.
MergeBackend` selected by ``config.merge_backend``: the serial oracle
loop or the vectorized batch kernel (bit-identical decisions — see
:mod:`repro.parallel.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.core.variants import SBPConfig
from repro.graph.graph import Graph
from repro.parallel.backend import get_merge_backend
from repro.sbm.blockmodel import Blockmodel
from repro.utils.rng import philox_stream
from repro.utils.timer import StopwatchPool

__all__ = ["block_merge_phase", "MERGE_PHASE_TAG"]

#: RNG phase-tag stride reserved for merge phases (see core.sbp tags).
MERGE_PHASE_TAG = 0


def block_merge_phase(
    bm: Blockmodel,
    graph: Graph,
    num_merges: int,
    config: SBPConfig,
    iteration: int,
    timers: StopwatchPool | None = None,
) -> Blockmodel:
    """Return a new compacted blockmodel with ``num_merges`` fewer blocks.

    ``bm`` is not modified. Proposals draw from a Philox stream keyed by
    ``(seed, merge-tag, iteration)`` so runs are reproducible; the draw
    layout is identical for every merge backend. When ``timers`` is
    given, the parallelizable candidate scan and the sequential apply
    step are accrued separately (``merge_scan`` / ``merge_apply``) for
    Fig.-2-style breakdowns.
    """
    C = bm.num_blocks
    num_merges = min(num_merges, C - 1)
    if num_merges <= 0:
        return bm.copy()

    proposals = config.merge_proposals_per_block
    rng = philox_stream(config.seed, MERGE_PHASE_TAG, iteration)
    uniforms = rng.random((C, proposals, 4))

    timers = timers if timers is not None else StopwatchPool()
    backend = get_merge_backend(config.merge_backend)
    with timers.section("merge_scan"):
        best_delta, best_target = backend.evaluate_merges(bm, uniforms)

    with timers.section("merge_apply"):
        order = np.argsort(best_delta, kind="stable")
        parent = np.arange(C, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = int(parent[root])
            # path compression
            while parent[x] != root:
                parent[x], x = root, int(parent[x])
            return root

        merged = 0
        for r in order:
            if merged >= num_merges:
                break
            target = int(best_target[r])
            if target < 0:
                continue
            root = find(target)
            if root == r:
                continue  # applying this (stale) merge would create a cycle
            parent[r] = root
            merged += 1

        roots = np.fromiter((find(b) for b in range(C)), dtype=np.int64, count=C)
        merged_assignment = roots[bm.assignment]
        # Relabel densely; from_assignment rebuilds B in one vectorized pass.
        _, dense = np.unique(merged_assignment, return_inverse=True)
        out = Blockmodel.from_assignment(
            graph, dense.astype(np.int64), storage=type(bm.state)
        )
    return out
