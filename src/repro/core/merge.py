"""Block-merge phase (paper Alg. 1).

For every block, a handful of merge candidates are proposed and the best
(lowest delta-MDL) is kept; candidates are evaluated against the
*unmodified* blockmodel ("embarrassingly parallel until the sort"), then
the globally best merges are applied greedily — following merge chains
with a union-find — until the block count reaches the target.
"""

from __future__ import annotations

import numpy as np

from repro.core.variants import SBPConfig
from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import merge_delta
from repro.sbm.moves import propose_block_merge
from repro.utils.rng import philox_stream

__all__ = ["block_merge_phase", "MERGE_PHASE_TAG"]

#: RNG phase-tag stride reserved for merge phases (see core.sbp tags).
MERGE_PHASE_TAG = 0


def block_merge_phase(
    bm: Blockmodel,
    graph: Graph,
    num_merges: int,
    config: SBPConfig,
    iteration: int,
) -> Blockmodel:
    """Return a new compacted blockmodel with ``num_merges`` fewer blocks.

    ``bm`` is not modified. Proposals draw from a Philox stream keyed by
    ``(seed, merge-tag, iteration)`` so runs are reproducible.
    """
    C = bm.num_blocks
    num_merges = min(num_merges, C - 1)
    if num_merges <= 0:
        return bm.copy()

    proposals = config.merge_proposals_per_block
    rng = philox_stream(config.seed, MERGE_PHASE_TAG, iteration)
    uniforms = rng.random((C, proposals, 4))

    best_delta = np.full(C, np.inf, dtype=np.float64)
    best_target = np.full(C, -1, dtype=np.int64)
    # Conceptually `for community c in B do in parallel` — evaluations are
    # independent reads of the frozen blockmodel.
    for r in range(C):
        for j in range(proposals):
            s = propose_block_merge(bm, r, uniforms[r, j])
            delta = merge_delta(bm, r, s)
            if delta < best_delta[r]:
                best_delta[r] = delta
                best_target[r] = s

    order = np.argsort(best_delta, kind="stable")
    parent = np.arange(C, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        # path compression
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    merged = 0
    for r in order:
        if merged >= num_merges:
            break
        target = int(best_target[r])
        if target < 0:
            continue
        root = find(target)
        if root == r:
            continue  # applying this (stale) merge would create a cycle
        parent[r] = root
        merged += 1

    roots = np.fromiter((find(b) for b in range(C)), dtype=np.int64, count=C)
    merged_assignment = roots[bm.assignment]
    # Relabel densely; from_assignment rebuilds B in one vectorized pass.
    _, dense = np.unique(merged_assignment, return_inverse=True)
    return Blockmodel.from_assignment(graph, dense.astype(np.int64))
