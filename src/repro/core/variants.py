"""Algorithm variants and run configuration.

The three variants differ only in the MCMC phase (paper Algs. 2-4); the
agglomerative outer loop and the block-merge phase are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Variant", "SBPConfig"]


class Variant(str, Enum):
    """The paper's named MCMC-phase algorithms.

    The enum is a convenience for the four canonical variants; the source
    of truth is the :mod:`repro.mcmc.engine` variant registry, which may
    hold additional plan builders (e.g. ``tiered``). ``SBPConfig.variant``
    therefore accepts any registered name, not just these members.
    """

    SBP = "sbp"       #: serial Metropolis-Hastings (Alg. 2)
    ASBP = "a-sbp"    #: asynchronous Gibbs (Alg. 3)
    HSBP = "h-sbp"    #: hybrid serial V* + async V- (Alg. 4)
    BSBP = "b-sbp"    #: batched async Gibbs (the paper's §6 future work)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class SBPConfig:
    """Tunable parameters of a stochastic block partitioning run.

    Defaults follow the paper and the GraphChallenge baseline lineage:
    15% V* fraction (§4.2), block-count halving per agglomerative step,
    10 merge proposals per block, beta = 3.

    Attributes
    ----------
    variant:
        Algorithm variant for the MCMC phase.
    beta:
        Inverse-temperature multiplier in the MH acceptance.
    vstar_fraction:
        Fraction of highest-degree vertices processed serially by H-SBP.
    num_batches:
        Intra-sweep rebuild count for B-SBP (1 = plain A-SBP staleness);
        also the barrier count of the ``tiered`` plan's middle band.
    tier_split:
        Degree-rank fraction where the ``tiered`` plan's frozen-batched
        middle band ends and its fully parallel tail begins (clamped to
        at least ``vstar_fraction``). Ignored by the four paper
        variants.
    mcmc_threshold, mcmc_threshold_final:
        The paper's ``t``: relative MDL tolerance while searching /
        after the golden-section bracket is established.
    max_sweeps:
        The paper's ``x``: per-phase sweep cap.
    merge_proposals_per_block:
        Merge candidates evaluated per block in Alg. 1.
    block_reduction_rate:
        Fraction of blocks retained per agglomerative step (0.5 halves).
    backend:
        Execution backend for async sweeps: 'serial', 'vectorized',
        'process', a 'resilient:<inner>' wrapper, or
        'distributed:<transport>:<ranks>' for the sharded runtime (all
        bit-identical; see :mod:`repro.distributed.runtime`).
    backend_options:
        Extra keyword arguments for the backend factory.
    shard_loss_policy:
        What the distributed runtime does when a shard dies mid-run:
        'recover' (re-lease its vertices to survivors and re-evaluate
        from the frozen state — bit-identical, the default), 'degrade'
        (finish with survivors, return best-so-far flagged
        ``interrupted=True``) or 'fail' (raise
        :class:`~repro.errors.ShardLost`). Ignored by non-distributed
        backends.
    merge_backend:
        Candidate-scan backend for the block-merge phase (Alg. 1):
        'vectorized' (batch kernels) or 'serial' (the oracle loop).
        Both pick bit-identical merges; only wall-clock differs.
    update_strategy:
        Sweep-barrier update engine: 'incremental' (O(Σ deg(moved))
        scatter delta-apply + serial-path proposal caching) or
        'rebuild' (the O(E) full-recount oracle). Both leave the
        blockmodel byte-equal after every sweep; only wall-clock
        differs.
    block_storage:
        Inter-block matrix storage engine from the
        :mod:`repro.sbm.block_storage` registry: 'dense' (contiguous
        C x C int64, the oracle), 'sparse' (per-row non-zero arrays,
        O(nnz) memory) or 'hybrid' (LRU dense line cache + write-behind
        journal over a sparse backing). Trajectories are bit-identical;
        only memory and wall-clock differ. 'auto' defers the choice to
        :func:`~repro.sbm.block_storage.resolve_block_storage`, which
        picks dense/hybrid from (C, density, memory budget) at run
        start — before checkpoint digests are computed, so the digest
        records the decision.
    sample_rate:
        SamBaS sampling front-end (:mod:`repro.sampling`): fit the
        golden-section search on a ``ceil(sample_rate * V)``-vertex
        induced sample, extend the partition to the full graph by
        argmax-ΔMDL insertion, then fine-tune with full-graph sweeps
        warm-started from the extension. ``1.0`` (the default) bypasses
        the front-end entirely — bit-identical to a plain run.
    sampler:
        Vertex sampler from the :mod:`repro.sampling.samplers` registry:
        'uniform-random', 'degree-weighted' (default) or
        'expansion-snowball'. Ignored at ``sample_rate=1.0``.
    extension_batches:
        Degree-descending barrier batches for the membership-extension
        pass; later batches see earlier assignments.
    seed:
        Master seed; every random draw in the run derives from it.
    record_work:
        Keep per-sweep work vectors (needed by the simulated thread
        executor; costs memory).
    max_outer_iterations:
        Safety cap on agglomerative iterations.
    validate:
        Run O(E + C^2) blockmodel consistency checks after each phase
        (debug aid; slow).
    time_budget:
        Wall-clock budget in seconds for one run; past the deadline the
        driver stops between sweeps and returns the best-so-far result
        flagged ``interrupted=True``. ``None`` disables the deadline.
    audit_cadence:
        Run the invariant audit (consistency check + non-finite MDL
        guard) every N agglomerative iterations; 0 disables auditing.
    audit_self_heal:
        When an audit finds a corrupt B matrix, rebuild it from the
        assignment (and log) instead of raising immediately.
    """

    variant: Variant | str = Variant.SBP
    beta: float = 3.0
    vstar_fraction: float = 0.15
    num_batches: int = 4
    tier_split: float = 0.5
    mcmc_threshold: float = 5e-4
    mcmc_threshold_final: float = 1e-4
    max_sweeps: int = 30
    merge_proposals_per_block: int = 10
    block_reduction_rate: float = 0.5
    backend: str = "vectorized"
    backend_options: dict = field(default_factory=dict)
    shard_loss_policy: str = "recover"
    merge_backend: str = "vectorized"
    update_strategy: str = "incremental"
    block_storage: str = "auto"
    sample_rate: float = 1.0
    sampler: str = "degree-weighted"
    extension_batches: int = 8
    seed: int = 0
    record_work: bool = False
    max_outer_iterations: int = 120
    validate: bool = False
    time_budget: float | None = None
    audit_cadence: int = 0
    audit_self_heal: bool = True

    def __post_init__(self) -> None:
        try:
            self.variant = Variant(self.variant)
        except ValueError:
            # Not one of the four canonical names: accept any variant the
            # engine registry knows (plan-only variants like 'tiered').
            # Imported lazily -- the engine depends on this module.
            from repro.mcmc.engine import get_variant_spec

            self.variant = get_variant_spec(str(self.variant)).name
        if not 0.0 <= self.vstar_fraction <= 1.0:
            raise ValueError("vstar_fraction must lie in [0, 1]")
        if not 0.0 <= self.tier_split <= 1.0:
            raise ValueError("tier_split must lie in [0, 1]")
        if not 0.0 < self.block_reduction_rate < 1.0:
            raise ValueError("block_reduction_rate must lie in (0, 1)")
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be >= 1")
        if self.merge_proposals_per_block < 1:
            raise ValueError("merge_proposals_per_block must be >= 1")
        if self.num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if self.beta <= 0:
            raise ValueError("beta must be > 0")
        if self.time_budget is not None and self.time_budget < 0:
            raise ValueError("time_budget must be >= 0 (or None)")
        if self.audit_cadence < 0:
            raise ValueError("audit_cadence must be >= 0")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in (0, 1]")
        if self.extension_batches < 1:
            raise ValueError("extension_batches must be >= 1")
        # Validated against the sampler registry (leaf module; the
        # sampling pipeline itself is imported lazily by run_sbp).
        from repro.sampling.samplers import get_sampler

        self.sampler = get_sampler(self.sampler).name
        if self.shard_loss_policy not in ("recover", "degrade", "fail"):
            raise ValueError(
                "shard_loss_policy must be 'recover', 'degrade' or 'fail', "
                f"got {self.shard_loss_policy!r}"
            )
        if self.update_strategy not in ("rebuild", "incremental"):
            raise ValueError(
                "update_strategy must be 'rebuild' or 'incremental', "
                f"got {self.update_strategy!r}"
            )
        # Validated against the registry so in-test/plugin engines are
        # accepted; imported lazily (leaf module, no cycle risk). The
        # "auto" policy name is legal here and resolved to a concrete
        # engine at run entry (it needs the graph's size).
        from repro.sbm.block_storage import AUTO_STORAGE, available_block_storages

        if (
            self.block_storage != AUTO_STORAGE
            and self.block_storage not in available_block_storages()
        ):
            raise ValueError(
                "block_storage must be one of "
                f"{available_block_storages() + [AUTO_STORAGE]}, "
                f"got {self.block_storage!r}"
            )

    def replace(self, **changes) -> "SBPConfig":
        """Return a copy with the given fields changed."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)
