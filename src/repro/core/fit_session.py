"""The unified fit engine: one object owning every way a search starts.

Before this module existed the golden-section agglomerative search knew
only one entry point (``run_sbp``'s cold fit from the singleton
partition) and the SamBaS pipeline carried private copies of everything
a *warm* start needs: the bracket-floor computation, the refinement-MCMC
phase at iteration tag 0, and the interrupted best-so-far result
construction. :class:`FitSession` hoists all of that behind one
contract:

* :meth:`cold_fit` — the plain pipeline: start from the singleton
  partition, agglomerate, golden-section to the MDL minimum. Exactly
  the pre-refactor ``run_sbp`` chain, byte for byte (golden-trajectory
  CI gates enforce this).
* :meth:`warm_refit` — start from a prior partition: refine it with one
  full-graph MCMC phase at iteration tag 0 (a tag the outer loop, which
  counts from 1, never uses, keeping the refinement's randomness
  disjoint from the loop's), then run the search with its bracket
  *floored* at :meth:`narrowed_min_blocks` around the prior block
  count so it evaluates the prior C and one reduction below it, then
  stops. This is both the SamBaS fine-tune stage and the streaming
  workload's per-snapshot refit.
* :meth:`partition_result` — the interrupted-fit fallback: package a
  bare partition as a best-so-far :class:`SBPResult` without running a
  search (used when a time budget or SIGINT cuts an upstream stage
  short but a usable partition exists).

Resilience semantics are owned here too: with a ``checkpointer`` the
session snapshots the outer-loop state atomically after every completed
agglomerative iteration and resumes bit-identically; on a resume the
snapshot wins and any ``warm_start`` is ignored (the warm state is
already baked into the snapshot's chain).
"""

from __future__ import annotations

from repro.core.merge import block_merge_phase
from repro.core.partition_search import GoldenSectionSearch
from repro.core.results import SBPResult
from repro.core.variants import SBPConfig
from repro.errors import CheckpointError
from repro.graph.graph import Graph
from repro.resilience.audit import InvariantAuditor
from repro.resilience.checkpoint import RunCheckpoint, RunCheckpointer, config_digest
from repro.resilience.interrupt import StopGuard
from repro.sbm.block_storage import resolve_block_storage
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import normalized_description_length
from repro.types import PhaseTimings, SweepStats
from repro.utils.log import get_logger
from repro.utils.memory import peak_rss_bytes
from repro.utils.timer import StopwatchPool

__all__ = ["FitSession", "resolve_storage_policy"]

_log = get_logger("core.fit_session")


def resolve_storage_policy(graph: Graph, config: SBPConfig) -> SBPConfig:
    """Resolve ``block_storage="auto"`` to a concrete engine for ``graph``.

    Must run before any :func:`config_digest` evaluation: the digest
    then records the *decision* (a pure function of V, E and the budget
    env), so checkpoints written under ``auto`` resume interchangeably
    with the equivalent explicit config and refuse a genuinely different
    engine.
    """
    resolved, reason = resolve_block_storage(
        config.block_storage, graph.num_vertices, graph.num_edges
    )
    if resolved != config.block_storage:
        _log.info("block_storage=auto -> %r (%s)", resolved, reason)
        config = config.replace(block_storage=resolved)
    return config


class FitSession:
    """One graph + one config, fit any number of ways (see module doc).

    Parameters
    ----------
    graph:
        The graph every fit of this session runs against.
    config:
        Run configuration. An ``auto`` storage policy is resolved here,
        once, so every fit (and every checkpoint digest) of the session
        sees the same concrete engine.
    checkpointer:
        Optional :class:`RunCheckpointer`; fits snapshot their
        outer-loop state after every agglomerative iteration and resume
        from the latest valid snapshot.
    """

    def __init__(
        self,
        graph: Graph,
        config: SBPConfig | None = None,
        checkpointer: RunCheckpointer | None = None,
    ) -> None:
        if config is None:
            config = SBPConfig()
        self.graph = graph
        self.config = resolve_storage_policy(graph, config)
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------
    # Warm-start helpers (hoisted out of sampling/pipeline.py)
    # ------------------------------------------------------------------
    @staticmethod
    def narrowed_min_blocks(num_blocks: int, reduction_rate: float) -> int:
        """Bracket floor for a warm-started search.

        The golden-section search never proposes fewer than this many
        blocks, so a warm refit evaluates the prior block count and a
        single reduction below it, then stops — the SamBaS rule
        ``min_blocks = max(1, round(B_prior * block_reduction_rate))``.
        """
        return max(1, int(round(num_blocks * reduction_rate)))

    def partition_result(
        self,
        bm: Blockmodel,
        *,
        timings: PhaseTimings | None = None,
        interrupted: bool = True,
        converged: bool = False,
        mcmc_sweeps: int = 0,
        outer_iterations: int = 0,
        sweep_stats: list[SweepStats] | None = None,
        search_history: list[tuple[int, float]] | None = None,
    ) -> SBPResult:
        """Package a bare partition as a (best-so-far) :class:`SBPResult`.

        The interrupted-fit fallback: evaluates the partition's MDL and
        fills the session's graph/config identity fields without running
        any search. ``timings`` defaults to a gauges-only record.
        """
        graph = self.graph
        mdl = bm.mdl(graph)
        if timings is None:
            timings = PhaseTimings()
        timings.peak_rss_bytes = max(timings.peak_rss_bytes, peak_rss_bytes())
        timings.b_nnz = bm.state.nnz
        timings.b_density = bm.state.density
        return SBPResult(
            variant=str(self.config.variant),
            assignment=bm.assignment,
            num_blocks=bm.num_blocks,
            mdl=mdl,
            normalized_mdl=normalized_description_length(
                mdl, graph.num_edges, graph.num_vertices
            ),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            timings=timings,
            mcmc_sweeps=mcmc_sweeps,
            outer_iterations=outer_iterations,
            seed=self.config.seed,
            converged=converged,
            interrupted=interrupted,
            sweep_stats=sweep_stats if sweep_stats is not None else [],
            search_history=(
                search_history if search_history is not None else []
            ),
            block_storage=self.config.block_storage,
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def cold_fit(self) -> SBPResult:
        """Plain full search from the singleton partition (``run_sbp``)."""
        return self.run()

    def warm_refit(
        self, warm: Blockmodel, *, min_blocks: int | None = None
    ) -> SBPResult:
        """Search warm-started from ``warm`` with a narrowed bracket.

        The session copies ``warm``, refines it with one MCMC phase at
        iteration tag 0, then runs the golden-section search floored at
        ``min_blocks`` (default: :meth:`narrowed_min_blocks` of the warm
        block count). ``warm`` itself is never mutated.
        """
        if min_blocks is None:
            min_blocks = self.narrowed_min_blocks(
                warm.num_blocks, self.config.block_reduction_rate
            )
        return self.run(warm_start=warm, min_blocks=min_blocks)

    def run(
        self,
        *,
        warm_start: Blockmodel | None = None,
        min_blocks: int = 1,
    ) -> SBPResult:
        """One golden-section agglomerative search (the engine itself).

        With ``warm_start`` the search starts from a copy of that
        blockmodel instead of the singleton partition and first
        *refines* it with one MCMC phase at iteration tag 0 before the
        search consumes it. ``min_blocks`` floors the golden-section
        bracket. With the defaults the code path is exactly the plain
        pipeline. On a checkpoint resume the snapshot wins and
        ``warm_start`` is ignored.
        """
        from repro.core.sbp import run_mcmc_phase
        from repro.parallel.backend import get_backend

        graph = self.graph
        config = self.config
        checkpointer = self.checkpointer

        backend_options = dict(config.backend_options)
        if "distributed" in config.backend:
            backend_options.setdefault(
                "shard_loss_policy", config.shard_loss_policy
            )
        backend = get_backend(config.backend, **backend_options)
        timers = StopwatchPool()
        search = GoldenSectionSearch(
            reduction_rate=config.block_reduction_rate, min_blocks=min_blocks
        )
        auditor = InvariantAuditor(config.audit_cadence, config.audit_self_heal)
        stop = StopGuard(config.time_budget)
        if hasattr(backend, "bind_stop_guard"):
            # The distributed runtime's degrade policy stops the run
            # between sweeps instead of raising, yielding a best-so-far
            # result.
            backend.bind_stop_guard(stop)
        digest = config_digest(config)

        state = checkpointer.load() if checkpointer is not None else None
        needs_warm_refine = False
        if state is not None:
            if state.config_digest != digest:
                raise CheckpointError(
                    f"{checkpointer.directory}: checkpoint was written by an "
                    "incompatible configuration (seed/variant/chain "
                    "parameters differ); refusing to resume"
                )
            bm = state.bm
            mdl = state.mdl
            outer = state.outer
            total_sweeps = state.total_sweeps
            search_history = list(state.search_history)
            state.restore_search(search)
            for name, seconds in state.timings.items():
                timers.add(name, seconds)
            _log.info(
                "resumed [%s] from %s at iteration %d (C=%d, mdl=%.2f)",
                str(config.variant), checkpointer.directory, outer,
                bm.num_blocks, mdl,
            )
        else:
            with timers.section("other"):
                bm = (
                    warm_start.copy()
                    if warm_start is not None
                    else Blockmodel.singleton(graph, storage=config.block_storage)
                )
                mdl = bm.mdl(graph)
            outer = 0
            total_sweeps = 0
            search_history = []
            needs_warm_refine = warm_start is not None
            if checkpointer is not None and not needs_warm_refine:
                # Initial snapshot: even a run interrupted before its
                # first iteration completes leaves a valid resume point
                # on disk. (Warm starts snapshot after the refine phase
                # instead, so a resume never replays the refine against
                # a stale tag-0 chain position.)
                checkpointer.save(self._snapshot(
                    search, bm, mdl, outer, total_sweeps, search_history,
                    timers, digest,
                ))

        all_stats: list[SweepStats] = []
        converged = False
        interrupted = False
        comm_report: dict | None = None
        try:
            with stop.install():
                if needs_warm_refine:
                    # Warm-start entry (SamBaS fine-tune, streaming
                    # refit): refine the prior partition with full-graph
                    # sweeps before the narrowed search consumes it.
                    # Iteration tag 0 keeps this phase's randomness
                    # disjoint from the loop's (tags >= 1).
                    phase_stats = run_mcmc_phase(
                        bm, graph, config, backend, 0, config.mcmc_threshold,
                        timers, stop=stop,
                    )
                    total_sweeps += len(phase_stats)
                    all_stats.extend(phase_stats)
                    with timers.section("other"):
                        bm.compact()
                        mdl = bm.mdl(graph)
                    search_history.append((bm.num_blocks, mdl))
                    if checkpointer is not None and not stop.triggered:
                        checkpointer.save(self._snapshot(
                            search, bm, mdl, outer, total_sweeps,
                            search_history, timers, digest,
                        ))
                while True:
                    step = search.update(bm, mdl)
                    if step.done:
                        converged = True
                        break
                    if outer >= config.max_outer_iterations:
                        break
                    if stop.triggered:
                        interrupted = True
                        break
                    outer += 1
                    assert step.start is not None
                    with timers.section("block_merge"):
                        bm = block_merge_phase(
                            step.start, graph, step.num_merges, config, outer,
                            timers=timers,
                        )
                    if config.validate:
                        bm.check_consistency(graph)
                    threshold = (
                        config.mcmc_threshold_final
                        if search.bracket_established
                        else config.mcmc_threshold
                    )
                    phase_stats = run_mcmc_phase(
                        bm, graph, config, backend, outer, threshold, timers,
                        stop=stop,
                    )
                    total_sweeps += len(phase_stats)
                    all_stats.extend(phase_stats)
                    with timers.section("other"):
                        bm.compact()
                        mdl = bm.mdl(graph)
                    mdl = auditor.guard_mdl(mdl, bm, graph, outer)
                    if auditor.due(outer):
                        with timers.section("other"):
                            auditor.audit(bm, graph, outer)
                            mdl = bm.mdl(graph)  # a heal may have changed B
                    search_history.append((bm.num_blocks, mdl))
                    _log.info(
                        "iter %d [%s]: C=%d mdl=%.2f sweeps=%d (%s)",
                        outer, str(config.variant), bm.num_blocks, mdl,
                        len(phase_stats),
                        "golden" if search.bracket_established else "halving",
                    )
                    # Only fully-converged iterations are checkpointed: a
                    # phase cut short by the stop guard would resume from
                    # a different point in the chain than a clean rerun.
                    if checkpointer is not None and not stop.triggered:
                        checkpointer.save(self._snapshot(
                            search, bm, mdl, outer, total_sweeps,
                            search_history, timers, digest,
                        ))
        finally:
            # Harvest the wire report before close() tears the transport
            # down.
            if hasattr(backend, "comm_report"):
                comm_report = backend.comm_report()
            backend.close()

        if comm_report is not None and comm_report.get("degraded"):
            # A shard died under the 'degrade' policy: the survivors
            # finished the run, but the chain is no longer the reference
            # chain.
            interrupted = True

        best = search.best.copy()
        best.compact()
        best_mdl = search.best_mdl
        _log.info(
            "%s [%s]: C=%d mdl=%.2f after %d iterations / %d sweeps "
            "(merge %.2fs, mcmc %.2fs, rebuild %.2fs)",
            "interrupted" if interrupted else "done",
            str(config.variant), best.num_blocks, best_mdl, outer,
            total_sweeps, timers.elapsed("block_merge"),
            timers.elapsed("mcmc"), timers.elapsed("rebuild"),
        )
        timings = PhaseTimings(
            block_merge=timers.elapsed("block_merge"),
            mcmc=timers.elapsed("mcmc"),
            rebuild=timers.elapsed("rebuild"),
            other=timers.elapsed("other"),
            merge_scan=timers.elapsed("merge_scan"),
            merge_apply=timers.elapsed("merge_apply"),
            barrier_rebuild=timers.elapsed("barrier_rebuild"),
            barrier_apply=timers.elapsed("barrier_apply"),
            peak_rss_bytes=peak_rss_bytes(),
            b_nnz=best.state.nnz,
            b_density=best.state.density,
            comm_messages=int((comm_report or {}).get("p2p_messages", 0)),
            comm_bytes=int((comm_report or {}).get("total_bytes", 0)),
            comm_retries=int((comm_report or {}).get("retries", 0)),
            frames_quarantined=int(
                (comm_report or {}).get("frames_quarantined", 0)
            ),
            shard_releases=int((comm_report or {}).get("shard_releases", 0)),
        )
        return SBPResult(
            variant=str(config.variant),
            assignment=best.assignment,
            num_blocks=best.num_blocks,
            mdl=best_mdl,
            normalized_mdl=normalized_description_length(
                best_mdl, graph.num_edges, graph.num_vertices
            ),
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            timings=timings,
            mcmc_sweeps=total_sweeps,
            outer_iterations=outer,
            seed=config.seed,
            converged=converged,
            interrupted=interrupted,
            sweep_stats=all_stats if config.record_work else [],
            search_history=search_history,
            block_storage=config.block_storage,
        )

    @staticmethod
    def _snapshot(
        search: GoldenSectionSearch,
        bm: Blockmodel,
        mdl: float,
        outer: int,
        total_sweeps: int,
        search_history: list[tuple[int, float]],
        timers: StopwatchPool,
        digest: str,
    ) -> RunCheckpoint:
        return RunCheckpoint(
            outer=outer,
            total_sweeps=total_sweeps,
            bm=bm.copy(),
            mdl=mdl,
            anchors=search.export_anchors(),
            search_history=list(search_history),
            timings=timers.snapshot(),
            config_digest=digest,
        )
