"""Top-level SBP drivers (paper Fig. 1 outer loop).

``run_sbp`` executes one full agglomerative run: alternate block-merge
and MCMC phases, steering the number of communities with the
golden-section search until the MDL is minimized. ``run_best_of``
repeats a run with derived seeds and keeps the lowest-MDL result, the
paper's §4.2 protocol.

Both drivers are resilient (see :mod:`repro.resilience`): passing a
:class:`~repro.resilience.checkpoint.RunCheckpointer` snapshots the
outer-loop state atomically after every agglomerative iteration and
resumes from the latest valid snapshot — bit-identically, because all
randomness is a pure function of ``(seed, phase tag, sweep)``. SIGINT
and ``SBPConfig.time_budget`` stop the run between sweeps and return the
best-so-far partition flagged ``interrupted=True`` instead of dying with
a stack trace, and ``SBPConfig.audit_cadence`` runs self-healing
invariant audits during the search.
"""

from __future__ import annotations

import time

from repro.core.merge import block_merge_phase
from repro.core.partition_search import GoldenSectionSearch
from repro.core.results import SBPResult, best_of
from repro.core.variants import SBPConfig
from repro.errors import CheckpointError
from repro.graph.graph import Graph
from repro.mcmc.engine import SweepEngine, build_plan
from repro.parallel.backend import ExecutionBackend, get_backend
from repro.resilience.audit import InvariantAuditor
from repro.resilience.checkpoint import RunCheckpoint, RunCheckpointer, config_digest
from repro.resilience.interrupt import StopGuard
from repro.sbm.block_storage import resolve_block_storage
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import normalized_description_length
from repro.types import PhaseTimings, SweepStats
from repro.utils.log import get_logger
from repro.utils.memory import peak_rss_bytes
from repro.utils.rng import spawn_seeds
from repro.utils.timer import StopwatchPool

__all__ = ["run_sbp", "run_best_of", "run_mcmc_phase"]

_log = get_logger("core.sbp")


def run_mcmc_phase(
    bm: Blockmodel,
    graph: Graph,
    config: SBPConfig,
    backend: ExecutionBackend,
    iteration: int,
    threshold: float,
    timers: StopwatchPool,
    stop: StopGuard | None = None,
) -> list[SweepStats]:
    """Run the variant's MCMC phase to convergence, mutating ``bm``.

    Thin wrapper kept for API stability: builds the registered
    :class:`~repro.mcmc.engine.SweepPlan` for ``config.variant`` and
    hands the loop to the :class:`~repro.mcmc.engine.SweepEngine`, which
    owns randomness derivation, barrier/timer accounting, stop-guard
    polling and stats merging for *every* variant.
    """
    engine = SweepEngine(build_plan(config), config, backend, timers)
    return engine.run_phase(bm, graph, iteration, threshold, stop=stop)


def run_sbp(
    graph: Graph,
    config: SBPConfig | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> SBPResult:
    """Run one full stochastic block partitioning inference on ``graph``.

    Returns the lowest-MDL partition found by the golden-section search,
    with per-phase timings and sweep statistics. With a ``checkpointer``
    the run snapshots its outer-loop state after every agglomerative
    iteration and resumes from the latest valid snapshot on the next
    call — reproducing the uninterrupted run's result bit-identically.
    (Per-sweep statistics of iterations completed before a crash are not
    reconstructed on resume; counters and the search history are.)

    With ``config.sample_rate < 1.0`` the run is delegated to the SamBaS
    sampling pipeline (:func:`repro.sampling.pipeline.run_sampled_sbp`):
    fit the sample, extend, fine-tune. At the default ``1.0`` the
    front-end is bypassed entirely and this function *is* the plain
    full-graph search — bit-identical to the pre-sampling pipeline.
    """
    if config is None:
        config = SBPConfig()
    config = _resolve_storage_policy(graph, config)
    if config.sample_rate < 1.0:
        # Imported lazily: the pipeline imports this module back.
        from repro.sampling.pipeline import run_sampled_sbp

        return run_sampled_sbp(graph, config, checkpointer)
    return _run_search(graph, config, checkpointer)


def _run_search(
    graph: Graph,
    config: SBPConfig,
    checkpointer: RunCheckpointer | None = None,
    *,
    warm_start: Blockmodel | None = None,
    min_blocks: int = 1,
) -> SBPResult:
    """One golden-section agglomerative search (the ``run_sbp`` engine).

    ``config.block_storage`` must already be resolved to a concrete
    engine. With ``warm_start`` the search starts from a copy of that
    blockmodel instead of the singleton partition and first *refines* it
    with one MCMC phase at iteration tag 0 (a tag the outer loop, which
    counts from 1, never uses) before the search consumes it — the
    SamBaS fine-tune stage. ``min_blocks`` narrows the golden-section
    bracket: the search never proposes fewer blocks, so a warm-started
    fine-tune evaluates the warm block count and a single reduction
    below it, then stops. With ``warm_start=None`` and ``min_blocks=1``
    (the defaults) the code path is exactly the plain pipeline. On a
    checkpoint resume the snapshot wins and ``warm_start`` is ignored —
    the warm state is already baked into the snapshot's chain.
    """
    backend_options = dict(config.backend_options)
    if "distributed" in config.backend:
        backend_options.setdefault("shard_loss_policy", config.shard_loss_policy)
    backend = get_backend(config.backend, **backend_options)
    timers = StopwatchPool()
    search = GoldenSectionSearch(
        reduction_rate=config.block_reduction_rate, min_blocks=min_blocks
    )
    auditor = InvariantAuditor(config.audit_cadence, config.audit_self_heal)
    stop = StopGuard(config.time_budget)
    if hasattr(backend, "bind_stop_guard"):
        # The distributed runtime's degrade policy stops the run between
        # sweeps instead of raising, yielding a best-so-far result.
        backend.bind_stop_guard(stop)
    digest = config_digest(config)

    state = checkpointer.load() if checkpointer is not None else None
    needs_warm_refine = False
    if state is not None:
        if state.config_digest != digest:
            raise CheckpointError(
                f"{checkpointer.directory}: checkpoint was written by an "
                "incompatible configuration (seed/variant/chain parameters "
                "differ); refusing to resume"
            )
        bm = state.bm
        mdl = state.mdl
        outer = state.outer
        total_sweeps = state.total_sweeps
        search_history = list(state.search_history)
        state.restore_search(search)
        for name, seconds in state.timings.items():
            timers.add(name, seconds)
        _log.info(
            "resumed [%s] from %s at iteration %d (C=%d, mdl=%.2f)",
            str(config.variant), checkpointer.directory, outer,
            bm.num_blocks, mdl,
        )
    else:
        with timers.section("other"):
            bm = (
                warm_start.copy()
                if warm_start is not None
                else Blockmodel.singleton(graph, storage=config.block_storage)
            )
            mdl = bm.mdl(graph)
        outer = 0
        total_sweeps = 0
        search_history = []
        needs_warm_refine = warm_start is not None
        if checkpointer is not None and not needs_warm_refine:
            # Initial snapshot: even a run interrupted before its first
            # iteration completes leaves a valid resume point on disk.
            # (Warm starts snapshot after the refine phase instead, so a
            # resume never replays the refine against a stale tag-0
            # chain position.)
            checkpointer.save(_snapshot(
                search, bm, mdl, outer, total_sweeps, search_history,
                timers, digest,
            ))

    all_stats: list[SweepStats] = []
    converged = False
    interrupted = False
    comm_report: dict | None = None
    try:
        with stop.install():
            if needs_warm_refine:
                # SamBaS fine-tune entry: refine the extended partition
                # with full-graph sweeps before the narrowed search
                # consumes it. Iteration tag 0 keeps this phase's
                # randomness disjoint from the loop's (tags >= 1).
                phase_stats = run_mcmc_phase(
                    bm, graph, config, backend, 0, config.mcmc_threshold,
                    timers, stop=stop,
                )
                total_sweeps += len(phase_stats)
                all_stats.extend(phase_stats)
                with timers.section("other"):
                    bm.compact()
                    mdl = bm.mdl(graph)
                search_history.append((bm.num_blocks, mdl))
                if checkpointer is not None and not stop.triggered:
                    checkpointer.save(_snapshot(
                        search, bm, mdl, outer, total_sweeps,
                        search_history, timers, digest,
                    ))
            while True:
                step = search.update(bm, mdl)
                if step.done:
                    converged = True
                    break
                if outer >= config.max_outer_iterations:
                    break
                if stop.triggered:
                    interrupted = True
                    break
                outer += 1
                assert step.start is not None
                with timers.section("block_merge"):
                    bm = block_merge_phase(
                        step.start, graph, step.num_merges, config, outer,
                        timers=timers,
                    )
                if config.validate:
                    bm.check_consistency(graph)
                threshold = (
                    config.mcmc_threshold_final
                    if search.bracket_established
                    else config.mcmc_threshold
                )
                phase_stats = run_mcmc_phase(
                    bm, graph, config, backend, outer, threshold, timers,
                    stop=stop,
                )
                total_sweeps += len(phase_stats)
                all_stats.extend(phase_stats)
                with timers.section("other"):
                    bm.compact()
                    mdl = bm.mdl(graph)
                mdl = auditor.guard_mdl(mdl, bm, graph, outer)
                if auditor.due(outer):
                    with timers.section("other"):
                        auditor.audit(bm, graph, outer)
                        mdl = bm.mdl(graph)  # a heal may have changed B
                search_history.append((bm.num_blocks, mdl))
                _log.info(
                    "iter %d [%s]: C=%d mdl=%.2f sweeps=%d (%s)",
                    outer, str(config.variant), bm.num_blocks, mdl,
                    len(phase_stats),
                    "golden" if search.bracket_established else "halving",
                )
                # Only fully-converged iterations are checkpointed: a
                # phase cut short by the stop guard would resume from a
                # different point in the chain than a clean rerun.
                if checkpointer is not None and not stop.triggered:
                    checkpointer.save(_snapshot(
                        search, bm, mdl, outer, total_sweeps,
                        search_history, timers, digest,
                    ))
    finally:
        # Harvest the wire report before close() tears the transport down.
        if hasattr(backend, "comm_report"):
            comm_report = backend.comm_report()
        backend.close()

    if comm_report is not None and comm_report.get("degraded"):
        # A shard died under the 'degrade' policy: the survivors finished
        # the run, but the chain is no longer the reference chain.
        interrupted = True

    best = search.best.copy()
    best.compact()
    best_mdl = search.best_mdl
    _log.info(
        "%s [%s]: C=%d mdl=%.2f after %d iterations / %d sweeps "
        "(merge %.2fs, mcmc %.2fs, rebuild %.2fs)",
        "interrupted" if interrupted else "done",
        str(config.variant), best.num_blocks, best_mdl, outer, total_sweeps,
        timers.elapsed("block_merge"), timers.elapsed("mcmc"),
        timers.elapsed("rebuild"),
    )
    timings = PhaseTimings(
        block_merge=timers.elapsed("block_merge"),
        mcmc=timers.elapsed("mcmc"),
        rebuild=timers.elapsed("rebuild"),
        other=timers.elapsed("other"),
        merge_scan=timers.elapsed("merge_scan"),
        merge_apply=timers.elapsed("merge_apply"),
        barrier_rebuild=timers.elapsed("barrier_rebuild"),
        barrier_apply=timers.elapsed("barrier_apply"),
        peak_rss_bytes=peak_rss_bytes(),
        b_nnz=best.state.nnz,
        b_density=best.state.density,
        comm_messages=int((comm_report or {}).get("p2p_messages", 0)),
        comm_bytes=int((comm_report or {}).get("total_bytes", 0)),
        comm_retries=int((comm_report or {}).get("retries", 0)),
        frames_quarantined=int((comm_report or {}).get("frames_quarantined", 0)),
        shard_releases=int((comm_report or {}).get("shard_releases", 0)),
    )
    return SBPResult(
        variant=str(config.variant),
        assignment=best.assignment,
        num_blocks=best.num_blocks,
        mdl=best_mdl,
        normalized_mdl=normalized_description_length(
            best_mdl, graph.num_edges, graph.num_vertices
        ),
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        timings=timings,
        mcmc_sweeps=total_sweeps,
        outer_iterations=outer,
        seed=config.seed,
        converged=converged,
        interrupted=interrupted,
        sweep_stats=all_stats if config.record_work else [],
        search_history=search_history,
        block_storage=config.block_storage,
    )


def _resolve_storage_policy(graph: Graph, config: SBPConfig) -> SBPConfig:
    """Resolve ``block_storage="auto"`` to a concrete engine for ``graph``.

    Must run before any :func:`config_digest` evaluation: the digest
    then records the *decision* (a pure function of V, E and the budget
    env), so checkpoints written under ``auto`` resume interchangeably
    with the equivalent explicit config and refuse a genuinely different
    engine.
    """
    resolved, reason = resolve_block_storage(
        config.block_storage, graph.num_vertices, graph.num_edges
    )
    if resolved != config.block_storage:
        _log.info("block_storage=auto -> %r (%s)", resolved, reason)
        config = config.replace(block_storage=resolved)
    return config


def _snapshot(
    search: GoldenSectionSearch,
    bm: Blockmodel,
    mdl: float,
    outer: int,
    total_sweeps: int,
    search_history: list[tuple[int, float]],
    timers: StopwatchPool,
    digest: str,
) -> RunCheckpoint:
    return RunCheckpoint(
        outer=outer,
        total_sweeps=total_sweeps,
        bm=bm.copy(),
        mdl=mdl,
        anchors=search.export_anchors(),
        search_history=list(search_history),
        timings=timers.snapshot(),
        config_digest=digest,
    )


def run_best_of(
    graph: Graph,
    config: SBPConfig | None = None,
    runs: int = 5,
    checkpointer: RunCheckpointer | None = None,
) -> tuple[SBPResult, list[SBPResult]]:
    """Paper §4.2 protocol: ``runs`` independent runs, keep the lowest MDL.

    Returns ``(best, all_results)``; aggregate timings (the paper sums
    MCMC time across all runs) are computed by the caller from the list.

    With a ``checkpointer``, each finished member run is persisted and
    the in-flight run snapshots into a per-run subdirectory, so a killed
    best-of search resumes mid-member. ``config.time_budget`` is a
    budget for the *whole* protocol: remaining wall-clock is handed down
    to each member run, and an exhausted budget stops launching members.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if config is None:
        config = SBPConfig()
    # Resolve the auto storage policy once, up front, so the per-member
    # digests below match what run_sbp computes for the same member.
    config = _resolve_storage_policy(graph, config)
    seeds = spawn_seeds(config.seed, runs)
    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget is not None
        else None
    )
    results: list[SBPResult] = []
    for index, seed in enumerate(seeds):
        run_config = config.replace(seed=seed)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 and results:
                _log.info(
                    "best-of budget exhausted after %d/%d runs", index, runs
                )
                break
            run_config = run_config.replace(time_budget=max(remaining, 0.0))
        if checkpointer is None:
            results.append(run_sbp(graph, run_config))
            continue
        member_digest = config_digest(run_config)
        prior = checkpointer.load_completed(index, digest=member_digest)
        if prior is not None:
            results.append(prior)
            continue
        result = run_sbp(
            graph, run_config, checkpointer=checkpointer.child(f"run_{index:02d}")
        )
        results.append(result)
        if result.interrupted:
            break  # don't mark completed; a resume reruns this member
        checkpointer.save_completed(index, result, digest=member_digest)
    return best_of(results), results
