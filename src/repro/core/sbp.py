"""Top-level SBP drivers (paper Fig. 1 outer loop).

``run_sbp`` executes one full agglomerative run: alternate block-merge
and MCMC phases, steering the number of communities with the
golden-section search until the MDL is minimized. ``run_best_of``
repeats a run with derived seeds and keeps the lowest-MDL result, the
paper's §4.2 protocol.

Both drivers are thin callers over the unified fit engine
(:class:`repro.core.fit_session.FitSession`), which owns cold fits,
warm refits from a prior partition, the refinement-MCMC entry point,
and interrupted best-so-far semantics. They remain bit-identical to the
pre-FitSession pipeline (golden-trajectory CI gates enforce this).

Both drivers are resilient (see :mod:`repro.resilience`): passing a
:class:`~repro.resilience.checkpoint.RunCheckpointer` snapshots the
outer-loop state atomically after every agglomerative iteration and
resumes from the latest valid snapshot — bit-identically, because all
randomness is a pure function of ``(seed, phase tag, sweep)``. SIGINT
and ``SBPConfig.time_budget`` stop the run between sweeps and return the
best-so-far partition flagged ``interrupted=True`` instead of dying with
a stack trace, and ``SBPConfig.audit_cadence`` runs self-healing
invariant audits during the search.
"""

from __future__ import annotations

import time

from repro.core.fit_session import FitSession, resolve_storage_policy
from repro.core.results import SBPResult, best_of
from repro.core.variants import SBPConfig
from repro.graph.graph import Graph
from repro.mcmc.engine import SweepEngine, build_plan
from repro.parallel.backend import ExecutionBackend
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.resilience.interrupt import StopGuard
from repro.sbm.blockmodel import Blockmodel
from repro.types import SweepStats
from repro.utils.log import get_logger
from repro.utils.rng import spawn_seeds
from repro.utils.timer import StopwatchPool

__all__ = ["run_sbp", "run_best_of", "run_mcmc_phase"]

_log = get_logger("core.sbp")

# Back-compat alias: the storage resolver grew up and moved into the fit
# engine; older call sites (and tests) reach it under this name.
_resolve_storage_policy = resolve_storage_policy


def run_mcmc_phase(
    bm: Blockmodel,
    graph: Graph,
    config: SBPConfig,
    backend: ExecutionBackend,
    iteration: int,
    threshold: float,
    timers: StopwatchPool,
    stop: StopGuard | None = None,
) -> list[SweepStats]:
    """Run the variant's MCMC phase to convergence, mutating ``bm``.

    Thin wrapper kept for API stability: builds the registered
    :class:`~repro.mcmc.engine.SweepPlan` for ``config.variant`` and
    hands the loop to the :class:`~repro.mcmc.engine.SweepEngine`, which
    owns randomness derivation, barrier/timer accounting, stop-guard
    polling and stats merging for *every* variant.
    """
    engine = SweepEngine(build_plan(config), config, backend, timers)
    return engine.run_phase(bm, graph, iteration, threshold, stop=stop)


def run_sbp(
    graph: Graph,
    config: SBPConfig | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> SBPResult:
    """Run one full stochastic block partitioning inference on ``graph``.

    Returns the lowest-MDL partition found by the golden-section search,
    with per-phase timings and sweep statistics. With a ``checkpointer``
    the run snapshots its outer-loop state after every agglomerative
    iteration and resumes from the latest valid snapshot on the next
    call — reproducing the uninterrupted run's result bit-identically.
    (Per-sweep statistics of iterations completed before a crash are not
    reconstructed on resume; counters and the search history are.)

    With ``config.sample_rate < 1.0`` the run is delegated to the SamBaS
    sampling pipeline (:func:`repro.sampling.pipeline.run_sampled_sbp`):
    fit the sample, extend, fine-tune. At the default ``1.0`` the
    front-end is bypassed entirely and this function *is* the plain
    full-graph search — bit-identical to the pre-sampling pipeline.
    """
    if config is None:
        config = SBPConfig()
    config = resolve_storage_policy(graph, config)
    if config.sample_rate < 1.0:
        # Imported lazily: the pipeline imports this module back.
        from repro.sampling.pipeline import run_sampled_sbp

        return run_sampled_sbp(graph, config, checkpointer)
    return FitSession(graph, config, checkpointer).cold_fit()


def _run_search(
    graph: Graph,
    config: SBPConfig,
    checkpointer: RunCheckpointer | None = None,
    *,
    warm_start: Blockmodel | None = None,
    min_blocks: int = 1,
) -> SBPResult:
    """Back-compat shim over :meth:`FitSession.run` (the old engine name).

    ``config.block_storage`` must already be resolved to a concrete
    engine, exactly as before — :class:`FitSession` re-resolving a
    concrete name is a no-op.
    """
    session = FitSession(graph, config, checkpointer)
    return session.run(warm_start=warm_start, min_blocks=min_blocks)


def run_best_of(
    graph: Graph,
    config: SBPConfig | None = None,
    runs: int = 5,
    checkpointer: RunCheckpointer | None = None,
) -> tuple[SBPResult, list[SBPResult]]:
    """Paper §4.2 protocol: ``runs`` independent runs, keep the lowest MDL.

    Returns ``(best, all_results)``; aggregate timings (the paper sums
    MCMC time across all runs) are computed by the caller from the list.

    With a ``checkpointer``, each finished member run is persisted and
    the in-flight run snapshots into a per-run subdirectory, so a killed
    best-of search resumes mid-member. ``config.time_budget`` is a
    budget for the *whole* protocol: remaining wall-clock is handed down
    to each member run, and an exhausted budget stops launching members.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if config is None:
        config = SBPConfig()
    # Resolve the auto storage policy once, up front, so the per-member
    # digests below match what run_sbp computes for the same member.
    config = resolve_storage_policy(graph, config)
    seeds = spawn_seeds(config.seed, runs)
    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget is not None
        else None
    )
    results: list[SBPResult] = []
    for index, seed in enumerate(seeds):
        run_config = config.replace(seed=seed)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 and results:
                _log.info(
                    "best-of budget exhausted after %d/%d runs", index, runs
                )
                break
            run_config = run_config.replace(time_budget=max(remaining, 0.0))
        if checkpointer is None:
            results.append(run_sbp(graph, run_config))
            continue
        member_digest = config_digest(run_config)
        prior = checkpointer.load_completed(index, digest=member_digest)
        if prior is not None:
            results.append(prior)
            continue
        result = run_sbp(
            graph, run_config, checkpointer=checkpointer.child(f"run_{index:02d}")
        )
        results.append(result)
        if result.interrupted:
            break  # don't mark completed; a resume reruns this member
        checkpointer.save_completed(index, result, digest=member_digest)
    return best_of(results), results
