"""Top-level SBP drivers (paper Fig. 1 outer loop).

``run_sbp`` executes one full agglomerative run: alternate block-merge
and MCMC phases, steering the number of communities with the
golden-section search until the MDL is minimized. ``run_best_of``
repeats a run with derived seeds and keeps the lowest-MDL result, the
paper's §4.2 protocol.

Both drivers are resilient (see :mod:`repro.resilience`): passing a
:class:`~repro.resilience.checkpoint.RunCheckpointer` snapshots the
outer-loop state atomically after every agglomerative iteration and
resumes from the latest valid snapshot — bit-identically, because all
randomness is a pure function of ``(seed, phase tag, sweep)``. SIGINT
and ``SBPConfig.time_budget`` stop the run between sweeps and return the
best-so-far partition flagged ``interrupted=True`` instead of dying with
a stack trace, and ``SBPConfig.audit_cadence`` runs self-healing
invariant audits during the search.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.merge import block_merge_phase
from repro.core.partition_search import GoldenSectionSearch
from repro.core.results import SBPResult, best_of
from repro.core.variants import SBPConfig, Variant
from repro.errors import CheckpointError
from repro.graph.graph import Graph
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.batched import batched_gibbs_sweep
from repro.mcmc.convergence import ConvergenceMonitor
from repro.mcmc.hybrid import hybrid_sweep, split_vertices_by_degree
from repro.mcmc.metropolis import metropolis_sweep
from repro.parallel.backend import (
    ExecutionBackend,
    get_backend,
    get_update_strategy,
)
from repro.resilience.audit import InvariantAuditor
from repro.resilience.checkpoint import RunCheckpoint, RunCheckpointer, config_digest
from repro.resilience.interrupt import StopGuard
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import normalized_description_length
from repro.types import PhaseTimings, SweepStats
from repro.utils.log import get_logger
from repro.utils.rng import SweepRandomness, spawn_seeds
from repro.utils.timer import StopwatchPool

__all__ = ["run_sbp", "run_best_of", "run_mcmc_phase"]

_log = get_logger("core.sbp")

# RNG phase tags: each (outer iteration, kind) pair gets its own stream.
_TAG_STRIDE = 4
_KIND_SERIAL = 1
_KIND_ASYNC = 2


def run_mcmc_phase(
    bm: Blockmodel,
    graph: Graph,
    config: SBPConfig,
    backend: ExecutionBackend,
    iteration: int,
    threshold: float,
    timers: StopwatchPool,
    stop: StopGuard | None = None,
) -> list[SweepStats]:
    """Run the variant-specific MCMC phase to convergence, mutating ``bm``.

    Implements the shared loop of Algs. 2-4: sweep until the windowed
    |dMDL| falls below ``threshold * MDL`` or ``config.max_sweeps`` is
    reached. Wall-clock is accrued to the ``mcmc`` timer, with per-sweep
    barrier time split out into ``rebuild`` (and, inside the update
    engine, the ``barrier_rebuild``/``barrier_apply`` sub-bucket of the
    engine actually used). When ``stop`` triggers (SIGINT / time budget)
    the phase returns early between sweeps, leaving ``bm`` in the valid
    post-sweep state.
    """
    monitor = ConvergenceMonitor(threshold, config.max_sweeps)
    rebuild_timer = timers.timer("rebuild")
    mcmc_timer = timers.timer("mcmc")
    updater = get_update_strategy(config.update_strategy, timers=timers)

    with mcmc_timer.measure():
        monitor.start(bm.mdl(graph))

    num_vertices = graph.num_vertices
    all_vertices = np.arange(num_vertices, dtype=np.int64)
    if config.variant is Variant.HSBP:
        vstar, vminus = split_vertices_by_degree(graph, config.vstar_fraction)
    else:
        vstar = vminus = None

    stats_log: list[SweepStats] = []
    sweep = 0
    while True:
        if stop is not None and stop.triggered:
            break
        rebuild_before = rebuild_timer.elapsed
        mcmc_timer.start()
        if config.variant is Variant.SBP:
            rand = SweepRandomness.draw(
                config.seed, iteration * _TAG_STRIDE + _KIND_SERIAL, sweep, num_vertices
            )
            stats = metropolis_sweep(
                bm, graph, all_vertices, rand, config.beta,
                record_work=config.record_work, updater=updater,
            )
        elif config.variant is Variant.ASBP:
            rand = SweepRandomness.draw(
                config.seed, iteration * _TAG_STRIDE + _KIND_ASYNC, sweep, num_vertices
            )
            stats = async_gibbs_sweep(
                bm, graph, all_vertices, rand, config.beta, backend,
                record_work=config.record_work, rebuild_timer=rebuild_timer,
                updater=updater,
            )
        elif config.variant is Variant.BSBP:
            rand = SweepRandomness.draw(
                config.seed, iteration * _TAG_STRIDE + _KIND_ASYNC, sweep, num_vertices
            )
            stats = batched_gibbs_sweep(
                bm, graph, all_vertices, rand, config.beta, backend,
                config.num_batches,
                record_work=config.record_work, rebuild_timer=rebuild_timer,
                updater=updater,
            )
        else:  # HSBP
            assert vstar is not None and vminus is not None
            rand_serial = SweepRandomness.draw(
                config.seed, iteration * _TAG_STRIDE + _KIND_SERIAL, sweep, len(vstar)
            )
            rand_async = SweepRandomness.draw(
                config.seed, iteration * _TAG_STRIDE + _KIND_ASYNC, sweep, len(vminus)
            )
            stats = hybrid_sweep(
                bm, graph, vstar, vminus, rand_serial, rand_async,
                config.beta, backend, record_work=config.record_work,
                rebuild_timer=rebuild_timer, updater=updater,
            )
        mdl = bm.mdl(graph)
        mcmc_timer.stop()
        # Rebuild time was accrued inside the sweep (async variants call
        # bm.rebuild under this timer via the sweep functions below); we
        # keep it out of the 'mcmc' bucket by subtracting post-hoc.
        rebuild_delta = rebuild_timer.elapsed - rebuild_before
        if rebuild_delta > 0:
            mcmc_timer.elapsed -= rebuild_delta

        stats.delta_mdl = mdl - monitor.last_mdl
        if config.record_work:
            stats_log.append(stats)
        else:
            stats_log.append(
                SweepStats(
                    proposals=stats.proposals,
                    accepted=stats.accepted,
                    delta_mdl=stats.delta_mdl,
                    serial_work=stats.serial_work,
                    parallel_work=stats.parallel_work,
                    barrier_moved=stats.barrier_moved,
                )
            )
        sweep += 1
        if monitor.update(mdl):
            break
    if config.validate:
        bm.check_consistency(graph)
    return stats_log


def run_sbp(
    graph: Graph,
    config: SBPConfig | None = None,
    checkpointer: RunCheckpointer | None = None,
) -> SBPResult:
    """Run one full stochastic block partitioning inference on ``graph``.

    Returns the lowest-MDL partition found by the golden-section search,
    with per-phase timings and sweep statistics. With a ``checkpointer``
    the run snapshots its outer-loop state after every agglomerative
    iteration and resumes from the latest valid snapshot on the next
    call — reproducing the uninterrupted run's result bit-identically.
    (Per-sweep statistics of iterations completed before a crash are not
    reconstructed on resume; counters and the search history are.)
    """
    if config is None:
        config = SBPConfig()
    backend = get_backend(config.backend, **config.backend_options)
    timers = StopwatchPool()
    search = GoldenSectionSearch(
        reduction_rate=config.block_reduction_rate, min_blocks=1
    )
    auditor = InvariantAuditor(config.audit_cadence, config.audit_self_heal)
    stop = StopGuard(config.time_budget)
    digest = config_digest(config)

    state = checkpointer.load() if checkpointer is not None else None
    if state is not None:
        if state.config_digest != digest:
            raise CheckpointError(
                f"{checkpointer.directory}: checkpoint was written by an "
                "incompatible configuration (seed/variant/chain parameters "
                "differ); refusing to resume"
            )
        bm = state.bm
        mdl = state.mdl
        outer = state.outer
        total_sweeps = state.total_sweeps
        search_history = list(state.search_history)
        state.restore_search(search)
        for name, seconds in state.timings.items():
            timers.add(name, seconds)
        _log.info(
            "resumed [%s] from %s at iteration %d (C=%d, mdl=%.2f)",
            config.variant.value, checkpointer.directory, outer,
            bm.num_blocks, mdl,
        )
    else:
        with timers.section("other"):
            bm = Blockmodel.singleton(graph)
            mdl = bm.mdl(graph)
        outer = 0
        total_sweeps = 0
        search_history = []
        if checkpointer is not None:
            # Initial snapshot: even a run interrupted before its first
            # iteration completes leaves a valid resume point on disk.
            checkpointer.save(_snapshot(
                search, bm, mdl, outer, total_sweeps, search_history,
                timers, digest,
            ))

    all_stats: list[SweepStats] = []
    converged = False
    interrupted = False
    try:
        with stop.install():
            while True:
                step = search.update(bm, mdl)
                if step.done:
                    converged = True
                    break
                if outer >= config.max_outer_iterations:
                    break
                if stop.triggered:
                    interrupted = True
                    break
                outer += 1
                assert step.start is not None
                with timers.section("block_merge"):
                    bm = block_merge_phase(
                        step.start, graph, step.num_merges, config, outer,
                        timers=timers,
                    )
                if config.validate:
                    bm.check_consistency(graph)
                threshold = (
                    config.mcmc_threshold_final
                    if search.bracket_established
                    else config.mcmc_threshold
                )
                phase_stats = run_mcmc_phase(
                    bm, graph, config, backend, outer, threshold, timers,
                    stop=stop,
                )
                total_sweeps += len(phase_stats)
                all_stats.extend(phase_stats)
                with timers.section("other"):
                    bm.compact()
                    mdl = bm.mdl(graph)
                mdl = auditor.guard_mdl(mdl, bm, graph, outer)
                if auditor.due(outer):
                    with timers.section("other"):
                        auditor.audit(bm, graph, outer)
                        mdl = bm.mdl(graph)  # a heal may have changed B
                search_history.append((bm.num_blocks, mdl))
                _log.info(
                    "iter %d [%s]: C=%d mdl=%.2f sweeps=%d (%s)",
                    outer, config.variant.value, bm.num_blocks, mdl,
                    len(phase_stats),
                    "golden" if search.bracket_established else "halving",
                )
                # Only fully-converged iterations are checkpointed: a
                # phase cut short by the stop guard would resume from a
                # different point in the chain than a clean rerun.
                if checkpointer is not None and not stop.triggered:
                    checkpointer.save(_snapshot(
                        search, bm, mdl, outer, total_sweeps,
                        search_history, timers, digest,
                    ))
    finally:
        backend.close()

    best = search.best.copy()
    best.compact()
    best_mdl = search.best_mdl
    _log.info(
        "%s [%s]: C=%d mdl=%.2f after %d iterations / %d sweeps "
        "(merge %.2fs, mcmc %.2fs, rebuild %.2fs)",
        "interrupted" if interrupted else "done",
        config.variant.value, best.num_blocks, best_mdl, outer, total_sweeps,
        timers.elapsed("block_merge"), timers.elapsed("mcmc"),
        timers.elapsed("rebuild"),
    )
    timings = PhaseTimings(
        block_merge=timers.elapsed("block_merge"),
        mcmc=timers.elapsed("mcmc"),
        rebuild=timers.elapsed("rebuild"),
        other=timers.elapsed("other"),
        merge_scan=timers.elapsed("merge_scan"),
        merge_apply=timers.elapsed("merge_apply"),
        barrier_rebuild=timers.elapsed("barrier_rebuild"),
        barrier_apply=timers.elapsed("barrier_apply"),
    )
    return SBPResult(
        variant=config.variant.value,
        assignment=best.assignment,
        num_blocks=best.num_blocks,
        mdl=best_mdl,
        normalized_mdl=normalized_description_length(
            best_mdl, graph.num_edges, graph.num_vertices
        ),
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        timings=timings,
        mcmc_sweeps=total_sweeps,
        outer_iterations=outer,
        seed=config.seed,
        converged=converged,
        interrupted=interrupted,
        sweep_stats=all_stats if config.record_work else [],
        search_history=search_history,
    )


def _snapshot(
    search: GoldenSectionSearch,
    bm: Blockmodel,
    mdl: float,
    outer: int,
    total_sweeps: int,
    search_history: list[tuple[int, float]],
    timers: StopwatchPool,
    digest: str,
) -> RunCheckpoint:
    return RunCheckpoint(
        outer=outer,
        total_sweeps=total_sweeps,
        bm=bm.copy(),
        mdl=mdl,
        anchors=search.export_anchors(),
        search_history=list(search_history),
        timings=timers.snapshot(),
        config_digest=digest,
    )


def run_best_of(
    graph: Graph,
    config: SBPConfig | None = None,
    runs: int = 5,
    checkpointer: RunCheckpointer | None = None,
) -> tuple[SBPResult, list[SBPResult]]:
    """Paper §4.2 protocol: ``runs`` independent runs, keep the lowest MDL.

    Returns ``(best, all_results)``; aggregate timings (the paper sums
    MCMC time across all runs) are computed by the caller from the list.

    With a ``checkpointer``, each finished member run is persisted and
    the in-flight run snapshots into a per-run subdirectory, so a killed
    best-of search resumes mid-member. ``config.time_budget`` is a
    budget for the *whole* protocol: remaining wall-clock is handed down
    to each member run, and an exhausted budget stops launching members.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if config is None:
        config = SBPConfig()
    seeds = spawn_seeds(config.seed, runs)
    deadline = (
        time.monotonic() + config.time_budget
        if config.time_budget is not None
        else None
    )
    results: list[SBPResult] = []
    for index, seed in enumerate(seeds):
        run_config = config.replace(seed=seed)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 and results:
                _log.info(
                    "best-of budget exhausted after %d/%d runs", index, runs
                )
                break
            run_config = run_config.replace(time_budget=max(remaining, 0.0))
        if checkpointer is None:
            results.append(run_sbp(graph, run_config))
            continue
        prior = checkpointer.load_completed(index)
        if prior is not None:
            results.append(prior)
            continue
        result = run_sbp(
            graph, run_config, checkpointer=checkpointer.child(f"run_{index:02d}")
        )
        results.append(result)
        if result.interrupted:
            break  # don't mark completed; a resume reruns this member
        checkpointer.save_completed(index, result)
    return best_of(results), results
