"""Result records returned by the SBP drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Assignment, PhaseTimings, SweepStats

__all__ = ["SBPResult", "best_of"]


@dataclass
class SBPResult:
    """Outcome of one community-detection run.

    ``timings`` carries the per-phase wall-clock breakdown used by the
    paper's Fig. 2 (MCMC fraction) and all speedup figures;
    ``mcmc_sweeps`` is the iteration count reported in Fig. 8.
    """

    variant: str
    assignment: Assignment
    num_blocks: int
    mdl: float
    normalized_mdl: float
    num_vertices: int
    num_edges: int
    timings: PhaseTimings
    mcmc_sweeps: int
    outer_iterations: int
    seed: int
    converged: bool
    #: True when the run was cut short (SIGINT or time budget) and this
    #: is the best-so-far partition rather than a converged search.
    interrupted: bool = False
    sweep_stats: list[SweepStats] = field(default_factory=list, repr=False)
    #: golden-section trace: (num_blocks, mdl) per agglomerative iteration
    search_history: list[tuple[int, float]] = field(default_factory=list, repr=False)
    #: the concrete storage engine the run used — records what the
    #: ``auto`` policy resolved to (empty on legacy archives).
    block_storage: str = ""
    #: sampler registry name when the SamBaS front-end ran (empty for
    #: plain full-graph runs and legacy archives).
    sampler: str = ""
    #: realized sample rate ``n / V`` after ceil/clamp; 1.0 for plain
    #: runs and legacy archives.
    sample_rate: float = 1.0
    #: how a streaming snapshot's fit started: "warm" (delta-carried
    #: partition refined with a narrowed search), "cold" (drift exceeded
    #: the policy threshold, full search from singleton). Empty for
    #: non-streaming runs and legacy archives.
    refit_mode: str = ""
    #: relative normalized-MDL drift of the carried-forward partition on
    #: the mutated graph that drove the warm-vs-cold decision; 0.0 for
    #: non-streaming runs.
    drift: float = 0.0
    #: NMI against the previous snapshot's partition (consecutive-snapshot
    #: stability); -1.0 when there is no previous snapshot.
    nmi_prev: float = -1.0

    @property
    def mcmc_seconds(self) -> float:
        """MCMC-phase time including the per-sweep rebuilds."""
        return self.timings.mcmc + self.timings.rebuild

    @property
    def total_seconds(self) -> float:
        return self.timings.total

    def summary_row(self) -> dict[str, object]:
        """Flat representation for the reporting layer."""
        return {
            "variant": self.variant,
            "V": self.num_vertices,
            "E": self.num_edges,
            "blocks": self.num_blocks,
            "MDL": self.mdl,
            "MDL_norm": self.normalized_mdl,
            "mcmc_s": self.mcmc_seconds,
            "total_s": self.total_seconds,
            "sweeps": self.mcmc_sweeps,
            "converged": self.converged,
            "interrupted": self.interrupted,
            "storage": self.block_storage,
            "sampler": self.sampler,
            "sample_rate": self.sample_rate,
            "refit_mode": self.refit_mode,
            "drift": self.drift,
            "nmi_prev": self.nmi_prev,
        }


def best_of(results: list[SBPResult]) -> SBPResult:
    """The paper's §4.2 selection rule: keep the lowest-MDL run."""
    if not results:
        raise ValueError("best_of() requires at least one result")
    return min(results, key=lambda r: r.mdl)
