"""SBP drivers: agglomerative loop, block-merge phase, golden-section search."""

from repro.core.variants import Variant, SBPConfig
from repro.core.results import SBPResult, best_of
from repro.core.merge import block_merge_phase
from repro.core.partition_search import GoldenSectionSearch
from repro.core.fit_session import FitSession
from repro.core.sbp import run_sbp, run_best_of, run_mcmc_phase

__all__ = [
    "Variant",
    "SBPConfig",
    "SBPResult",
    "best_of",
    "block_merge_phase",
    "GoldenSectionSearch",
    "FitSession",
    "run_sbp",
    "run_best_of",
    "run_mcmc_phase",
]
