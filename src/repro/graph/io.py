"""Graph readers/writers: whitespace edge lists and MatrixMarket.

The paper's real-world datasets come from the SuiteSparse Matrix
Collection, which ships MatrixMarket ``.mtx`` files; we implement the
coordinate-format subset those graphs use (``pattern`` and real-valued
``general`` matrices, interpreted as directed unweighted edges).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "read_edge_list",
    "read_weighted_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]


def read_edge_list(path: str | os.PathLike[str], num_vertices: int | None = None) -> Graph:
    """Read a ``src dst`` per-line edge list; ``#``/``%`` lines are comments.

    Vertex ids must be non-negative integers. When ``num_vertices`` is
    omitted it is inferred as ``max(id) + 1``.
    """
    sources: list[int] = []
    targets: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst', got {line!r}"
                )
            try:
                s, t = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if s < 0 or t < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: vertex ids must be non-negative"
                )
            sources.append(s)
            targets.append(t)
    if not sources and num_vertices is None:
        raise GraphFormatError(f"{path}: empty edge list and no num_vertices given")
    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    ) if sources else np.empty((0, 2), dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1
    return Graph(num_vertices, edges)


def read_weighted_edge_list(
    path: str | os.PathLike[str], num_vertices: int | None = None
) -> Graph:
    """Read ``src dst weight`` lines as an integer-weighted multigraph.

    A weight-w edge becomes w parallel edges — the exact embedding into
    the count-based DCSBM (see :mod:`repro.graph.transforms`). Missing
    weights default to 1, so plain edge lists also parse.
    """
    from repro.graph.transforms import expand_weighted_edges

    sources: list[int] = []
    targets: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
                )
            try:
                s, t = int(parts[0]), int(parts[1])
                w = int(parts[2]) if len(parts) > 2 else 1
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer field in {line!r}"
                ) from exc
            if s < 0 or t < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: vertex ids must be non-negative"
                )
            if w < 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: weights must be non-negative"
                )
            sources.append(s)
            targets.append(t)
            weights.append(w)
    if not sources and num_vertices is None:
        raise GraphFormatError(f"{path}: empty edge list and no num_vertices given")
    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    ) if sources else np.empty((0, 2), dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1
    return expand_weighted_edges(edges, np.asarray(weights, dtype=np.int64), num_vertices)


def write_edge_list(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a ``src dst`` per-line edge list."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# directed graph: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for s, t in graph.edges:
            fh.write(f"{s} {t}\n")


def read_matrix_market(path: str | os.PathLike[str]) -> Graph:
    """Read a MatrixMarket coordinate file as a directed graph.

    A nonzero at (i, j) becomes the edge ``i-1 -> j-1``. ``symmetric``
    matrices are expanded to both directions (excluding duplicate
    diagonal entries), mirroring how SuiteSparse graphs are used as
    directed inputs.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphFormatError(
                f"{path}: only 'matrix coordinate' files are supported"
            )
        field, symmetry = tokens[3], tokens[4]
        if field not in {"pattern", "real", "integer"}:
            raise GraphFormatError(f"{path}: unsupported field type {field!r}")
        if symmetry not in {"general", "symmetric"}:
            raise GraphFormatError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            rows, cols, nnz = (int(x) for x in line.split())
        except ValueError as exc:
            raise GraphFormatError(f"{path}: bad size line {line!r}") from exc
        if rows != cols:
            raise GraphFormatError(
                f"{path}: adjacency matrix must be square, got {rows}x{cols}"
            )

        sources = np.empty(nnz, dtype=np.int64)
        targets = np.empty(nnz, dtype=np.int64)
        for k in range(nnz):
            entry = fh.readline()
            if not entry:
                raise GraphFormatError(f"{path}: expected {nnz} entries, got {k}")
            parts = entry.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}: bad entry {entry!r}")
            sources[k] = int(parts[0]) - 1
            targets[k] = int(parts[1]) - 1

    if symmetry == "symmetric":
        off_diag = sources != targets
        mirror_src = targets[off_diag]
        mirror_dst = sources[off_diag]
        sources = np.concatenate([sources, mirror_src])
        targets = np.concatenate([targets, mirror_dst])

    edges = np.stack([sources, targets], axis=1)
    return Graph(rows, edges)


def write_matrix_market(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a general-pattern MatrixMarket coordinate file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        fh.write(f"% generated by repro: V={graph.num_vertices} E={graph.num_edges}\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {graph.num_edges}\n")
        for s, t in graph.edges:
            fh.write(f"{s + 1} {t + 1}\n")
