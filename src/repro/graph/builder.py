"""Incremental construction of :class:`~repro.graph.Graph` objects."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`Graph`.

    Vertex ids may be arbitrary hashables; they are densely relabelled to
    ``0..V-1`` at :meth:`build` time (in first-seen order) unless the
    builder was constructed with a fixed ``num_vertices``, in which case
    ids must already be integers in range.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge("a", "b").add_edge("b", "c")
    GraphBuilder(vertices=3, edges=2)
    >>> g = b.build()
    >>> (g.num_vertices, g.num_edges)
    (3, 2)
    """

    def __init__(self, num_vertices: int | None = None) -> None:
        self._fixed_size = num_vertices
        self._labels: dict[object, int] = {}
        self._sources: list[int] = []
        self._targets: list[int] = []

    def _intern(self, label: object) -> int:
        if self._fixed_size is not None:
            try:
                v = int(label)  # type: ignore[arg-type]
            except (TypeError, ValueError) as exc:
                raise GraphValidationError(
                    f"fixed-size builder requires integer ids, got {label!r}"
                ) from exc
            if not 0 <= v < self._fixed_size:
                raise GraphValidationError(
                    f"vertex {v} out of range [0, {self._fixed_size})"
                )
            return v
        idx = self._labels.get(label)
        if idx is None:
            idx = len(self._labels)
            self._labels[label] = idx
        return idx

    def add_edge(self, source: object, target: object) -> "GraphBuilder":
        """Append one directed edge; returns self for chaining."""
        self._sources.append(self._intern(source))
        self._targets.append(self._intern(target))
        return self

    def add_edges(self, edges: Iterable[tuple[object, object]]) -> "GraphBuilder":
        for s, t in edges:
            self.add_edge(s, t)
        return self

    def add_vertex(self, label: object) -> int:
        """Register an (possibly isolated) vertex; returns its dense id."""
        return self._intern(label)

    @property
    def num_vertices(self) -> int:
        if self._fixed_size is not None:
            return self._fixed_size
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._sources)

    @property
    def labels(self) -> list[object]:
        """Original labels indexed by dense id (auto-sized builders only)."""
        out: list[object] = [None] * len(self._labels)
        for label, idx in self._labels.items():
            out[idx] = label
        return out

    def build(self, deduplicate: bool = False) -> Graph:
        """Produce the immutable graph.

        Parameters
        ----------
        deduplicate:
            If true, parallel edges are collapsed to a single edge.
        """
        if self.num_vertices == 0:
            raise GraphValidationError("cannot build a graph with no vertices")
        edges = np.stack(
            [
                np.asarray(self._sources, dtype=np.int64),
                np.asarray(self._targets, dtype=np.int64),
            ],
            axis=1,
        ) if self._sources else np.empty((0, 2), dtype=np.int64)
        if deduplicate and edges.size:
            edges = np.unique(edges, axis=0)
        return Graph(self.num_vertices, edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphBuilder(vertices={self.num_vertices}, edges={self.num_edges})"
