"""Directed-graph substrate: CSR storage, construction, IO and statistics."""

from repro.graph.graph import Graph
from repro.graph.stream import EdgeBatch, apply_edge_batch
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
    read_matrix_market,
    write_matrix_market,
)
from repro.graph.properties import GraphSummary, summarize, estimate_power_law_exponent
from repro.graph.transforms import (
    symmetrize,
    remove_self_loops,
    expand_weighted_edges,
    induced_subgraph,
    weak_components,
    largest_weak_component,
)

__all__ = [
    "Graph",
    "EdgeBatch",
    "apply_edge_batch",
    "GraphBuilder",
    "read_edge_list",
    "read_weighted_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "GraphSummary",
    "summarize",
    "estimate_power_law_exponent",
    "symmetrize",
    "remove_self_loops",
    "expand_weighted_edges",
    "induced_subgraph",
    "weak_components",
    "largest_weak_component",
]
