"""Graph transforms: symmetrization, weights, component extraction.

Covers the preprocessing steps the paper's future work points at (§6:
"we also intend to test our approach on weighted and undirected
graphs"):

* **undirected graphs** enter the directed pipeline via
  :func:`symmetrize` (every edge duplicated in both directions — the
  standard embedding of an undirected multigraph into the directed
  DCSBM);
* **integer-weighted graphs** are exact multigraphs: a weight-w edge is
  w parallel edges, which the entire MDL stack already handles —
  :func:`expand_weighted_edges` performs that expansion;
* :func:`largest_weak_component` / :func:`induced_subgraph` are the
  usual cleanup before inference on real datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.graph import Graph
from repro.types import EdgeList, IntArray

__all__ = [
    "symmetrize",
    "remove_self_loops",
    "expand_weighted_edges",
    "induced_subgraph",
    "weak_components",
    "largest_weak_component",
]


def symmetrize(graph: Graph, collapse: bool = False) -> Graph:
    """Embed the graph as a symmetric directed graph.

    Every edge (u, v) gains a reverse edge (v, u); self-loops are kept
    single. With ``collapse=True``, parallel edges in the result are
    deduplicated first (useful when the input already contains both
    directions for some pairs).
    """
    edges = graph.edges
    off_diag = edges[edges[:, 0] != edges[:, 1]]
    loops = edges[edges[:, 0] == edges[:, 1]]
    combined = np.concatenate([off_diag, off_diag[:, ::-1], loops])
    if collapse and combined.size:
        combined = np.unique(combined, axis=0)
    return Graph(graph.num_vertices, np.ascontiguousarray(combined))


def remove_self_loops(graph: Graph) -> Graph:
    """Drop all self-loop edges."""
    keep = graph.edges[:, 0] != graph.edges[:, 1]
    return Graph(graph.num_vertices, graph.edges[keep])


def expand_weighted_edges(
    edges: EdgeList, weights: np.ndarray, num_vertices: int
) -> Graph:
    """Build a multigraph where each edge is repeated ``weights`` times.

    The exact embedding of an integer-weighted graph into the
    (count-based) microcanonical DCSBM. Weights must be non-negative
    integers; zero-weight edges are dropped.
    """
    edges = np.asarray(edges, dtype=np.int64)
    weights = np.asarray(weights)
    if weights.shape[0] != edges.shape[0]:
        raise GraphValidationError(
            f"weights length {weights.shape[0]} != edge count {edges.shape[0]}"
        )
    if not np.issubdtype(weights.dtype, np.integer):
        rounded = np.rint(weights)
        if not np.allclose(weights, rounded):
            raise GraphValidationError(
                "weights must be (convertible to) non-negative integers; "
                "rescale fractional weights first"
            )
        weights = rounded.astype(np.int64)
    if (weights < 0).any():
        raise GraphValidationError("weights must be non-negative")
    expanded = np.repeat(edges, weights, axis=0)
    return Graph(num_vertices, expanded)


def induced_subgraph(graph: Graph, vertices: IntArray) -> tuple[Graph, IntArray]:
    """Subgraph on ``vertices`` with dense relabeling.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
    id of new vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise GraphValidationError("induced subgraph needs at least one vertex")
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise GraphValidationError("subgraph vertices out of range")
    lookup = np.full(graph.num_vertices, -1, dtype=np.int64)
    lookup[vertices] = np.arange(vertices.shape[0], dtype=np.int64)
    edges = graph.edges
    keep = (lookup[edges[:, 0]] >= 0) & (lookup[edges[:, 1]] >= 0)
    sub_edges = lookup[edges[keep]]
    return Graph(int(vertices.shape[0]), sub_edges), vertices


def weak_components(graph: Graph) -> IntArray:
    """Label vertices by weakly connected component (union-find)."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for s, t in graph.edges:
        rs, rt = find(int(s)), find(int(t))
        if rs != rt:
            parent[rs] = rt
    roots = np.fromiter(
        (find(v) for v in range(graph.num_vertices)),
        dtype=np.int64,
        count=graph.num_vertices,
    )
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def largest_weak_component(graph: Graph) -> tuple[Graph, IntArray]:
    """Subgraph of the largest weakly connected component.

    Returns ``(subgraph, mapping)`` as in :func:`induced_subgraph`.
    """
    labels = weak_components(graph)
    sizes = np.bincount(labels)
    biggest = int(np.argmax(sizes))
    members = np.nonzero(labels == biggest)[0]
    return induced_subgraph(graph, members)
