"""Descriptive statistics over graphs (degrees, density, power-law fit).

Used by the Table 1 / Table 2 benches to report the generated corpus in
the paper's format, and by the real-world stand-in generator to check
that the requested degree profile was honoured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.types import FloatArray, IntArray

__all__ = ["GraphSummary", "summarize", "estimate_power_law_exponent", "degree_histogram"]


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a directed graph."""

    num_vertices: int
    num_edges: int
    density: float
    mean_degree: float
    max_out_degree: int
    max_in_degree: int
    self_loop_count: int
    power_law_exponent: float

    def as_row(self) -> dict[str, float | int]:
        """Flat dict representation for the reporting layer."""
        return {
            "V": self.num_vertices,
            "E": self.num_edges,
            "density": self.density,
            "mean_degree": self.mean_degree,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "self_loops": self.self_loop_count,
            "plaw_exponent": self.power_law_exponent,
        }


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        density=graph.density,
        mean_degree=float(graph.degree.mean()),
        max_out_degree=int(graph.out_degree.max(initial=0)),
        max_in_degree=int(graph.in_degree.max(initial=0)),
        self_loop_count=int(graph.self_loops.sum()),
        power_law_exponent=estimate_power_law_exponent(graph.degree),
    )


def estimate_power_law_exponent(
    degrees: IntArray, d_min: int = 1, method: str = "discrete"
) -> float:
    """Power-law exponent MLE over degrees ``>= d_min``.

    ``method='discrete'`` (default) maximizes the zeta-normalized
    discrete likelihood numerically (Clauset-Shalizi-Newman Eq. B.5,
    using the Hurwitz zeta for the normalizer — accurate even at
    ``d_min = 1``); ``method='continuous'`` uses the closed-form
    continuous approximation ``1 + n / sum(log(d / (d_min - 0.5)))``,
    which is faster but biased for small ``d_min``. Returns ``nan`` when
    fewer than two qualifying degrees exist.
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= d_min]
    if d.size < 2:
        return float("nan")
    if method == "continuous":
        total = float(np.log(d / (d_min - 0.5)).sum())
        if total <= 0:
            return float("nan")
        return float(1.0 + d.size / total)
    if method != "discrete":
        raise ValueError(f"method must be 'discrete' or 'continuous', got {method!r}")
    if np.all(d == d[0]):
        return float("nan")  # degenerate: likelihood increases without bound

    from scipy import optimize, special

    log_mean = float(np.log(d).mean())

    def negative_loglik(alpha: float) -> float:
        return alpha * log_mean + float(np.log(special.zeta(alpha, d_min)))

    result = optimize.minimize_scalar(
        negative_loglik, bounds=(1.05, 8.0), method="bounded"
    )
    if not result.success:  # pragma: no cover - bounded search always succeeds
        return float("nan")
    return float(result.x)


def degree_histogram(graph: Graph, kind: str = "total") -> tuple[IntArray, FloatArray]:
    """Return (degree values, empirical pmf) for the chosen degree kind.

    ``kind`` is one of ``"total"``, ``"out"``, ``"in"``.
    """
    if kind == "total":
        degrees = graph.degree
    elif kind == "out":
        degrees = graph.out_degree
    elif kind == "in":
        degrees = graph.in_degree
    else:
        raise ValueError(f"kind must be 'total', 'out' or 'in', got {kind!r}")
    counts = np.bincount(degrees)
    values = np.nonzero(counts)[0]
    pmf = counts[values] / degrees.shape[0]
    return values.astype(np.int64), pmf.astype(np.float64)
