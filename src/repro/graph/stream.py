"""Edge-stream primitives: batched mutations over the immutable Graph.

:class:`~repro.graph.graph.Graph` is deliberately immutable (its CSR
arrays are read-only so kernels can take zero-copy views), so a mutation
is expressed as a value — an :class:`EdgeBatch` of additions and
removals — and *applied*, producing a new ``Graph``:

    batch = EdgeBatch(add=[[0, 3]], remove=[[1, 2]])
    g2 = apply_edge_batch(g1, batch)

The application rule is deterministic so downstream bit-identity gates
hold: each removal deletes the *earliest* surviving occurrence of that
directed edge in the old edge list (multiset semantics — removing
``(u, v)`` twice needs two copies present, else
:class:`GraphValidationError`), surviving edges keep their original
order, and additions are appended in batch order. ``num_vertices`` may
only grow (streams add vertices, never renumber them).

The same batch drives the blockmodel side:
:meth:`repro.sbm.blockmodel.Blockmodel.apply_edge_delta` scatters the
batch's block-endpoint deltas through the storage engine's
``scatter_edges`` path instead of recounting every edge — see
:func:`repro.sbm.incremental.apply_edge_delta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.graph import Graph
from repro.types import EdgeList
from repro.utils.arrays import expand_ranges

__all__ = ["EdgeBatch", "apply_edge_batch"]


def _coerce_edges(edges, label: str) -> EdgeList:
    arr = np.asarray(edges if edges is not None else (), dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphValidationError(
            f"{label} edges must have shape (E, 2), got {arr.shape}"
        )
    if arr.min() < 0:
        raise GraphValidationError(f"{label} edge endpoints must be >= 0")
    return arr


@dataclass(frozen=True)
class EdgeBatch:
    """One batch of graph mutations: edges to add and edges to remove.

    Parameters
    ----------
    add, remove:
        Integer arrays of shape ``(E, 2)`` (source, target). Duplicates
        are meaningful — the graph is a multigraph, so adding ``(u, v)``
        twice inserts two parallel edges and removing it twice deletes
        two.
    num_vertices:
        Optional new vertex count; must be at least the old graph's
        (vertices are only ever added, never renumbered). ``None`` keeps
        the old count.
    """

    add: EdgeList = field(default_factory=lambda: np.empty((0, 2), np.int64))
    remove: EdgeList = field(default_factory=lambda: np.empty((0, 2), np.int64))
    num_vertices: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "add", _coerce_edges(self.add, "add"))
        object.__setattr__(self, "remove", _coerce_edges(self.remove, "remove"))
        if self.num_vertices is not None:
            nv = int(self.num_vertices)
            if nv <= 0:
                raise GraphValidationError("num_vertices must be positive")
            object.__setattr__(self, "num_vertices", nv)

    @property
    def is_empty(self) -> bool:
        return (
            self.add.shape[0] == 0
            and self.remove.shape[0] == 0
            and self.num_vertices is None
        )

    def normalized(self) -> "EdgeBatch":
        """Cancel add/remove pairs of the same directed edge (dedup rule).

        An edge both added and removed in one batch is a no-op; each
        such pair is cancelled with multiset semantics (two adds + one
        remove of ``(u, v)`` leave one net add). The relative order of
        the surviving entries is preserved, so a normalized batch applies
        identically to the original.
        """
        if self.add.shape[0] == 0 or self.remove.shape[0] == 0:
            return self
        width = int(
            max(self.add.max(initial=0), self.remove.max(initial=0))
        ) + 1
        add_keys = self.add[:, 0] * width + self.add[:, 1]
        rem_keys = self.remove[:, 0] * width + self.remove[:, 1]
        add_keep = _drop_earliest_matches(add_keys, rem_keys)
        rem_keep = _drop_earliest_matches(rem_keys, add_keys)
        if add_keep.all() and rem_keep.all():
            return self
        return EdgeBatch(
            add=self.add[add_keep],
            remove=self.remove[rem_keep],
            num_vertices=self.num_vertices,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grow = f", V->{self.num_vertices}" if self.num_vertices else ""
        return (
            f"EdgeBatch(+{self.add.shape[0]}, -{self.remove.shape[0]}{grow})"
        )


def _drop_earliest_matches(keys: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Keep-mask over ``keys`` after cancelling against ``other``.

    For each key appearing ``k`` times in ``other``, the earliest
    ``min(k, count)`` occurrences in ``keys`` are dropped.
    """
    keep = np.ones(keys.shape[0], dtype=bool)
    if keys.size == 0 or other.size == 0:
        return keep
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    uniq, counts = np.unique(other, return_counts=True)
    lo = np.searchsorted(sorted_keys, uniq, side="left")
    hi = np.searchsorted(sorted_keys, uniq, side="right")
    take = np.minimum(counts, hi - lo)
    drop = expand_ranges(lo, take)
    keep[order[drop]] = False
    return keep


def apply_edge_batch(graph: Graph, batch: EdgeBatch) -> Graph:
    """Apply ``batch`` to ``graph``, returning a new :class:`Graph`.

    Deterministic application rule (see module doc): removals delete the
    earliest occurrences of each directed edge, survivors keep their
    original order, additions are appended in batch order. Raises
    :class:`GraphValidationError` when a removal references an edge (or
    any endpoint an addition references a vertex) that does not exist.
    """
    batch = batch.normalized()
    num_vertices = graph.num_vertices
    if batch.num_vertices is not None:
        if batch.num_vertices < num_vertices:
            raise GraphValidationError(
                f"num_vertices may only grow ({num_vertices} -> "
                f"{batch.num_vertices})"
            )
        num_vertices = batch.num_vertices
    if batch.add.size and batch.add.max() >= num_vertices:
        raise GraphValidationError(
            "added edge endpoints must lie in [0, num_vertices)"
        )
    if batch.remove.size and batch.remove.max() >= graph.num_vertices:
        raise GraphValidationError(
            "removed edge endpoints must lie in the old graph"
        )

    edges = graph.edges
    if batch.remove.shape[0]:
        width = num_vertices
        old_keys = edges[:, 0] * width + edges[:, 1]
        rem_keys = batch.remove[:, 0] * width + batch.remove[:, 1]
        order = np.argsort(old_keys, kind="stable")
        sorted_keys = old_keys[order]
        uniq, counts = np.unique(rem_keys, return_counts=True)
        lo = np.searchsorted(sorted_keys, uniq, side="left")
        hi = np.searchsorted(sorted_keys, uniq, side="right")
        available = hi - lo
        short = counts > available
        if short.any():
            u, v = divmod(int(uniq[short][0]), width)
            raise GraphValidationError(
                f"cannot remove edge ({u}, {v}): "
                f"{int(counts[short][0])} requested, "
                f"{int(available[short][0])} present"
            )
        drop = expand_ranges(lo, counts)
        keep = np.ones(edges.shape[0], dtype=bool)
        keep[order[drop]] = False
        edges = edges[keep]
    if batch.add.shape[0]:
        edges = np.concatenate([edges, batch.add], axis=0)
    return Graph(num_vertices, edges.copy())
