"""Immutable directed graph stored in compressed sparse row (CSR) form.

The SBP kernels touch three adjacency views per vertex very frequently:

* out-neighbours (edges ``v -> w``),
* in-neighbours (edges ``w -> v``),
* the concatenation of both ("incident" list, used by the neighbour-guided
  proposal of the GraphChallenge SBP lineage).

All three are precomputed once as CSR (pointer + index) arrays so the hot
loops only ever take zero-copy numpy views — the views-not-copies rule
from the HPC optimization guide matters here because proposals are drawn
millions of times per run.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import GraphValidationError
from repro.types import EdgeList, IntArray

__all__ = ["Graph"]


class Graph:
    """A directed, unweighted multigraph with vertices ``0..V-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``V``. Vertex ids must lie in ``[0, V)``.
    edges:
        Integer array of shape ``(E, 2)``; column 0 is the source and
        column 1 the target of each edge. Parallel edges and self-loops
        are permitted (the DCSBM is a multigraph model).

    Notes
    -----
    The graph is immutable after construction; all arrays are marked
    read-only so accidental mutation inside a kernel fails fast.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "edges",
        "out_ptr",
        "out_nbrs",
        "in_ptr",
        "in_nbrs",
        "inc_ptr",
        "inc_nbrs",
        "out_degree",
        "in_degree",
        "degree",
        "self_loops",
        "_digest",
    )

    def __init__(self, num_vertices: int, edges: EdgeList) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphValidationError(
                f"edges must have shape (E, 2), got {edges.shape}"
            )
        num_vertices = int(num_vertices)
        if num_vertices <= 0:
            raise GraphValidationError("graph must have at least one vertex")
        if edges.size and (edges.min() < 0 or edges.max() >= num_vertices):
            raise GraphValidationError(
                "edge endpoints must lie in [0, num_vertices)"
            )

        self.num_vertices: int = num_vertices
        self.num_edges: int = int(edges.shape[0])
        self.edges: EdgeList = edges
        self._digest: str | None = None  # computed lazily, graph is immutable

        src = edges[:, 0]
        dst = edges[:, 1]

        self.out_degree: IntArray = np.bincount(src, minlength=num_vertices)
        self.in_degree: IntArray = np.bincount(dst, minlength=num_vertices)
        self.degree: IntArray = self.out_degree + self.in_degree
        self.self_loops: IntArray = np.bincount(
            src[src == dst], minlength=num_vertices
        )

        self.out_ptr, self.out_nbrs = _build_csr(src, dst, num_vertices)
        self.in_ptr, self.in_nbrs = _build_csr(dst, src, num_vertices)
        self.inc_ptr, self.inc_nbrs = _build_incident_csr(
            self.out_ptr, self.out_nbrs, self.in_ptr, self.in_nbrs
        )

        for arr in (
            self.edges,
            self.out_ptr,
            self.out_nbrs,
            self.in_ptr,
            self.in_nbrs,
            self.inc_ptr,
            self.inc_nbrs,
            self.out_degree,
            self.in_degree,
            self.degree,
            self.self_loops,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Adjacency views (zero-copy)
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> IntArray:
        """Targets of edges leaving ``v`` (with multiplicity)."""
        return self.out_nbrs[self.out_ptr[v] : self.out_ptr[v + 1]]

    def in_neighbors(self, v: int) -> IntArray:
        """Sources of edges entering ``v`` (with multiplicity)."""
        return self.in_nbrs[self.in_ptr[v] : self.in_ptr[v + 1]]

    def incident_neighbors(self, v: int) -> IntArray:
        """Out-neighbours followed by in-neighbours of ``v``.

        Length equals ``degree[v]``; self-loops appear twice, matching
        their weight in the total degree.
        """
        return self.inc_nbrs[self.inc_ptr[v] : self.inc_ptr[v + 1]]

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        # Compare canonical (sorted) edge multisets.
        return np.array_equal(_canonical_edges(self.edges), _canonical_edges(other.edges))

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))

    def digest(self) -> str:
        """sha256 content address of ``(V, canonical edge multiset)``.

        Two graphs share a digest iff they are equal under :meth:`__eq__`:
        the edge list is canonicalized (lexicographically sorted) before
        hashing, so edge *order* never matters, while the vertex count is
        hashed explicitly, so isolated vertices always do. The digest is
        the graph half of a service job's content address (the config
        half is :func:`~repro.resilience.checkpoint.config_digest`).
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(np.int64(self.num_vertices).tobytes())
            canonical = _canonical_edges(self.edges).astype("<i8", copy=False)
            h.update(np.ascontiguousarray(canonical).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    @property
    def density(self) -> float:
        """Edges per ordered vertex pair (self-pairs included)."""
        return self.num_edges / float(self.num_vertices) ** 2

    def reversed(self) -> "Graph":
        """The graph with every edge direction flipped."""
        return Graph(self.num_vertices, self.edges[:, ::-1].copy())

    def to_undirected_edges(self) -> EdgeList:
        """Edge list with each ordered pair canonicalized (u <= v)."""
        lo = np.minimum(self.edges[:, 0], self.edges[:, 1])
        hi = np.maximum(self.edges[:, 0], self.edges[:, 1])
        return np.stack([lo, hi], axis=1)


def _build_csr(
    key: IntArray, value: IntArray, num_vertices: int
) -> tuple[IntArray, IntArray]:
    """Group ``value`` by ``key`` into (ptr, indices) CSR arrays."""
    order = np.argsort(key, kind="stable")
    counts = np.bincount(key, minlength=num_vertices)
    ptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr, value[order].astype(np.int64, copy=False)


def _build_incident_csr(
    out_ptr: IntArray,
    out_nbrs: IntArray,
    in_ptr: IntArray,
    in_nbrs: IntArray,
) -> tuple[IntArray, IntArray]:
    """Concatenate out- and in-adjacency into one CSR structure."""
    num_vertices = out_ptr.shape[0] - 1
    out_counts = np.diff(out_ptr)
    in_counts = np.diff(in_ptr)
    ptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(out_counts + in_counts, out=ptr[1:])
    nbrs = np.empty(int(ptr[-1]), dtype=np.int64)
    for v in range(num_vertices):
        start = ptr[v]
        mid = start + out_counts[v]
        nbrs[start:mid] = out_nbrs[out_ptr[v] : out_ptr[v + 1]]
        nbrs[mid : ptr[v + 1]] = in_nbrs[in_ptr[v] : in_ptr[v + 1]]
    return ptr, nbrs


def _canonical_edges(edges: EdgeList) -> EdgeList:
    idx = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[idx]
