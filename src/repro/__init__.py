"""repro — reproduction of "On the Parallelization of MCMC for Community
Detection" (Wanye, Gleyzer, Kao, Feng; ICPP 2022).

Implements stochastic block partitioning (SBP) and its two parallel MCMC
variants — asynchronous SBP (A-SBP, asynchronous Gibbs) and hybrid SBP
(H-SBP, serial high-degree pass + async rest) — on top of a from-scratch
degree-corrected stochastic blockmodel substrate, plus the generators,
metrics and benchmark harness needed to regenerate every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import generate_dcsbm, DCSBMParams, run_sbp, SBPConfig, Variant
>>> graph, truth = generate_dcsbm(
...     DCSBMParams(num_vertices=150, num_communities=4,
...                 within_between_ratio=6.0, mean_degree=8.0), seed=1)
>>> result = run_sbp(graph, SBPConfig(variant=Variant.HSBP, seed=1))
>>> result.num_blocks >= 1
True
"""

from repro.errors import (
    ReproError,
    GraphFormatError,
    GraphValidationError,
    GeneratorError,
    BlockmodelError,
    ConvergenceError,
    BackendError,
    ExperimentError,
    SerializationError,
    CheckpointError,
)
from repro.graph import (
    Graph,
    GraphBuilder,
    read_edge_list,
    write_edge_list,
    read_matrix_market,
    write_matrix_market,
    GraphSummary,
    summarize,
)
from repro.generators import (
    DCSBMParams,
    generate_dcsbm,
    SyntheticSpec,
    SYNTHETIC_SPECS,
    generate_synthetic,
    corpus_ids,
    RealWorldSpec,
    REAL_WORLD_SPECS,
    generate_real_world_standin,
    real_world_ids,
)
from repro.sbm import (
    Blockmodel,
    description_length,
    normalized_description_length,
)
from repro.core import (
    Variant,
    SBPConfig,
    SBPResult,
    run_sbp,
    run_best_of,
    best_of,
)
from repro.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    directed_modularity,
    partition_mdl,
    partition_normalized_mdl,
    total_influence,
    fit_correlation,
)
from repro.io import (
    save_result,
    load_result,
    save_assignment,
    load_assignment,
    save_blockmodel,
    load_blockmodel,
)
from repro.sampling import (
    SampledGraph,
    available_samplers,
    sample_graph,
)
from repro.diagnostics import SweepTrace, trace_from_result, run_health
from repro.parallel import (
    get_backend,
    available_backends,
    SimulatedThreadModel,
)
from repro.resilience import (
    RunCheckpointer,
    ResilientBackend,
    InvariantAuditor,
    StopGuard,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "GeneratorError",
    "BlockmodelError",
    "ConvergenceError",
    "BackendError",
    "ExperimentError",
    "SerializationError",
    "CheckpointError",
    # graph
    "Graph",
    "GraphBuilder",
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "GraphSummary",
    "summarize",
    # generators
    "DCSBMParams",
    "generate_dcsbm",
    "SyntheticSpec",
    "SYNTHETIC_SPECS",
    "generate_synthetic",
    "corpus_ids",
    "RealWorldSpec",
    "REAL_WORLD_SPECS",
    "generate_real_world_standin",
    "real_world_ids",
    # sbm
    "Blockmodel",
    "description_length",
    "normalized_description_length",
    # core
    "Variant",
    "SBPConfig",
    "SBPResult",
    "run_sbp",
    "run_best_of",
    "best_of",
    # metrics
    "adjusted_rand_index",
    "normalized_mutual_information",
    "directed_modularity",
    "partition_mdl",
    "partition_normalized_mdl",
    "total_influence",
    "fit_correlation",
    # io
    "save_result",
    "load_result",
    "save_assignment",
    "load_assignment",
    "save_blockmodel",
    "load_blockmodel",
    # sampling
    "SampledGraph",
    "available_samplers",
    "sample_graph",
    # diagnostics
    "SweepTrace",
    "trace_from_result",
    "run_health",
    # parallel
    "get_backend",
    "available_backends",
    "SimulatedThreadModel",
    # resilience
    "RunCheckpointer",
    "ResilientBackend",
    "InvariantAuditor",
    "StopGuard",
    "__version__",
]
