"""Warm-vs-cold refit policies for streaming snapshots.

After an edge batch mutates the graph, the previous snapshot's partition
is carried forward (via the O(|batch|) edge-delta path) and its
normalized MDL on the *new* graph is compared against the normalized MDL
the previous fit achieved. The relative change is the **drift**:

    drift = (carried_nmdl - prior_nmdl) / |prior_nmdl|

Small drift means the old community structure still describes the new
graph well — a warm refit (narrowed golden-section bracket around the
prior block count) will converge in a fraction of a cold fit's
iterations. Large drift means the structure broke (a community split,
the batch rewired half the graph) and the narrowed bracket would trap
the search near a stale optimum — fall back to a cold fit.

Policies are registered by name (the execution-backend / sampler
registry pattern) so ``repro stream --drift-policy`` and tests can
select or inject them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "drift_value",
    "DriftPolicy",
    "register_drift_policy",
    "get_drift_policy",
    "available_drift_policies",
]


def drift_value(prior_nmdl: float, carried_nmdl: float) -> float:
    """Relative normalized-MDL change of the carried partition."""
    if prior_nmdl == 0.0:
        return 0.0 if carried_nmdl == 0.0 else float("inf")
    return (carried_nmdl - prior_nmdl) / abs(prior_nmdl)


@dataclass(frozen=True)
class DriftPolicy:
    """A named warm-vs-cold decision rule.

    ``should_cold_fit(drift, threshold)`` receives the signed drift and
    the session's configured threshold and returns True to force a cold
    fit for this snapshot.
    """

    name: str
    summary: str
    should_cold_fit: Callable[[float, float], bool]


_DRIFT_REGISTRY: dict[str, DriftPolicy] = {}


def register_drift_policy(policy: DriftPolicy) -> None:
    """Register a policy; its name becomes valid for ``repro stream``."""
    if policy.name in _DRIFT_REGISTRY:
        raise ReproError(f"drift policy {policy.name!r} already registered")
    _DRIFT_REGISTRY[policy.name] = policy


def get_drift_policy(name: str) -> DriftPolicy:
    policy = _DRIFT_REGISTRY.get(str(name))
    if policy is None:
        raise ReproError(
            f"unknown drift policy {name!r}; "
            f"registered: {available_drift_policies()}"
        )
    return policy


def available_drift_policies() -> list[str]:
    return sorted(_DRIFT_REGISTRY)


register_drift_policy(DriftPolicy(
    name="mdl-ratio",
    summary="cold fit when relative normalized-MDL drift exceeds the "
            "threshold",
    should_cold_fit=lambda drift, threshold: drift > threshold,
))
register_drift_policy(DriftPolicy(
    name="always-warm",
    summary="never cold fit (upper bound on warm-refit speed/quality)",
    should_cold_fit=lambda drift, threshold: False,
))
register_drift_policy(DriftPolicy(
    name="always-cold",
    summary="cold fit every snapshot (the from-scratch baseline)",
    should_cold_fit=lambda drift, threshold: True,
))
