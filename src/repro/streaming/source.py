"""Stream sources: named producers of (initial graph, edge batches).

A stream source materializes an :class:`EdgeStream` — the initial
:class:`~repro.graph.graph.Graph` plus the ordered list of
:class:`~repro.graph.stream.EdgeBatch` mutations that advance it one
snapshot at a time. Two built-ins:

* ``synthetic-churn`` — a planted DCSBM graph whose edges churn at a
  configurable rate per snapshot: each batch removes a deterministic
  random fraction of the current edges and adds the same number of new
  edges drawn from the planted community structure, so the ground truth
  stays stable while the edge multiset turns over. All randomness is a
  pure function of ``(seed, snapshot index)`` via Philox streams — the
  benchmark's stream is reproducible bit-for-bit.
* ``edgelist-dir`` — a directory of edge-list files, lexicographically
  ordered, each a full snapshot; consecutive snapshots are diffed into
  add/remove batches (multiset semantics), with vertex growth carried
  through ``EdgeBatch.num_vertices``.

Sources register by name (the sampler-registry pattern) so
``repro stream --source`` and tests can select them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.generators import DCSBMParams, generate_dcsbm
from repro.graph.graph import Graph
from repro.graph.stream import EdgeBatch
from repro.types import Assignment
from repro.utils.rng import philox_stream

__all__ = [
    "EdgeStream",
    "StreamSourceSpec",
    "register_stream_source",
    "get_stream_source",
    "available_stream_sources",
    "synthetic_churn_stream",
    "edgelist_dir_stream",
]

#: Philox sub-stream tag for per-snapshot churn randomness.
_CHURN_TAG = 0x57BE


@dataclass(frozen=True)
class EdgeStream:
    """An initial graph plus the batches that advance it."""

    graph: Graph
    batches: list[EdgeBatch]
    #: planted ground truth of the *initial* graph when the source is
    #: synthetic (None for real data).
    truth: Assignment | None = None

    @property
    def num_snapshots(self) -> int:
        """Snapshots including the initial graph (batches + 1)."""
        return len(self.batches) + 1


@dataclass(frozen=True)
class StreamSourceSpec:
    """A named, registered stream source.

    ``build(**options)`` returns an :class:`EdgeStream`; options come
    from the CLI (``--source-option key=value``) or test code.
    """

    name: str
    summary: str
    build: Callable[..., EdgeStream]


_SOURCE_REGISTRY: dict[str, StreamSourceSpec] = {}


def register_stream_source(spec: StreamSourceSpec) -> None:
    """Register a source; its name becomes valid for ``repro stream``."""
    if spec.name in _SOURCE_REGISTRY:
        raise ReproError(f"stream source {spec.name!r} already registered")
    _SOURCE_REGISTRY[spec.name] = spec


def get_stream_source(name: str) -> StreamSourceSpec:
    spec = _SOURCE_REGISTRY.get(str(name))
    if spec is None:
        raise ReproError(
            f"unknown stream source {name!r}; "
            f"registered: {available_stream_sources()}"
        )
    return spec


def available_stream_sources() -> list[str]:
    return sorted(_SOURCE_REGISTRY)


def synthetic_churn_stream(
    num_vertices: int = 1000,
    num_communities: int = 8,
    num_snapshots: int = 5,
    churn: float = 0.05,
    within_between_ratio: float = 5.0,
    mean_degree: float | None = None,
    seed: int = 0,
) -> EdgeStream:
    """A DCSBM graph churning ``churn`` of its edges per snapshot.

    Each batch removes ``round(churn * E)`` edges chosen uniformly from
    the current multiset and adds the same number of fresh edges drawn
    from the planted structure (source uniform; target within the
    source's community with probability ``ratio / (ratio + 1)``, else
    uniform among the rest), keeping E and the ground truth stable
    across the stream.
    """
    if not 0.0 < churn < 1.0:
        raise ReproError(f"churn must lie in (0, 1), got {churn}")
    if num_snapshots < 1:
        raise ReproError(f"num_snapshots must be >= 1, got {num_snapshots}")
    params = DCSBMParams(
        num_vertices=num_vertices,
        num_communities=num_communities,
        within_between_ratio=within_between_ratio,
        mean_degree=mean_degree,
    )
    graph, truth = generate_dcsbm(params, seed=seed)
    p_within = within_between_ratio / (within_between_ratio + 1.0)
    members = [
        np.flatnonzero(truth == c) for c in range(num_communities)
    ]
    edges = graph.edges.copy()
    batches: list[EdgeBatch] = []
    for snap in range(1, num_snapshots):
        rng = philox_stream(seed, _CHURN_TAG, snap)
        k = max(1, int(round(churn * edges.shape[0])))
        removed_idx = rng.choice(edges.shape[0], size=k, replace=False)
        removed = edges[removed_idx]
        src = rng.integers(0, num_vertices, size=k)
        dst = np.empty(k, dtype=np.int64)
        within = rng.random(k) < p_within
        for i in range(k):
            community = members[int(truth[src[i]])]
            if within[i] and community.shape[0] > 0:
                dst[i] = community[rng.integers(0, community.shape[0])]
            else:
                dst[i] = rng.integers(0, num_vertices)
        added = np.stack([src, dst], axis=1).astype(np.int64)
        batches.append(EdgeBatch(add=added, remove=removed))
        keep = np.ones(edges.shape[0], dtype=bool)
        keep[removed_idx] = False
        edges = np.concatenate([edges[keep], added], axis=0)
    return EdgeStream(graph=graph, batches=batches, truth=truth)


def _diff_edges(
    old: np.ndarray, new: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Multiset diff: (edges only in new, edges only in old)."""
    old_keys = old[:, 0] * width + old[:, 1]
    new_keys = new[:, 0] * width + new[:, 1]
    keys = np.concatenate([old_keys, new_keys])
    uniq, inverse = np.unique(keys, return_inverse=True)
    old_counts = np.bincount(inverse[: old_keys.shape[0]], minlength=uniq.shape[0])
    new_counts = np.bincount(inverse[old_keys.shape[0]:], minlength=uniq.shape[0])
    delta = new_counts - old_counts
    add_keys = np.repeat(uniq[delta > 0], delta[delta > 0])
    rem_keys = np.repeat(uniq[delta < 0], -delta[delta < 0])
    add = np.stack(divmod(add_keys, width), axis=1) if add_keys.size else np.empty((0, 2), np.int64)
    rem = np.stack(divmod(rem_keys, width), axis=1) if rem_keys.size else np.empty((0, 2), np.int64)
    return add.astype(np.int64), rem.astype(np.int64)


def edgelist_dir_stream(
    directory: str | Path, pattern: str = "*", **_: object
) -> EdgeStream:
    """Snapshots from a directory of edge-list files (sorted by name).

    Each file is a full snapshot in the two-column edge-list format of
    :func:`repro.graph.io.read_edge_list`; consecutive snapshots diff
    into add/remove batches. The vertex count only grows along the
    stream (a later snapshot may introduce new vertex ids, never drop
    the id space).
    """
    from repro.graph.io import read_edge_list

    directory = Path(directory)
    files = sorted(p for p in directory.glob(pattern) if p.is_file())
    if not files:
        raise ReproError(f"{directory}: no snapshot files match {pattern!r}")
    graphs = [read_edge_list(p) for p in files]
    initial = graphs[0]
    width = max(g.num_vertices for g in graphs)
    batches: list[EdgeBatch] = []
    prev = initial
    for g in graphs[1:]:
        if g.num_vertices < prev.num_vertices:
            raise ReproError(
                f"{directory}: snapshot vertex count shrank "
                f"({prev.num_vertices} -> {g.num_vertices})"
            )
        add, rem = _diff_edges(prev.edges, g.edges, width)
        grow = g.num_vertices if g.num_vertices > prev.num_vertices else None
        batches.append(EdgeBatch(add=add, remove=rem, num_vertices=grow))
        prev = g
    return EdgeStream(graph=initial, batches=batches)


register_stream_source(StreamSourceSpec(
    name="synthetic-churn",
    summary="planted DCSBM with a fixed per-snapshot edge churn rate",
    build=synthetic_churn_stream,
))
register_stream_source(StreamSourceSpec(
    name="edgelist-dir",
    summary="directory of edge-list files, one full snapshot per file",
    build=edgelist_dir_stream,
))
