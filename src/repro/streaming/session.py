"""The streaming workload: warm-refit a partition along an edge stream.

A :class:`StreamSession` consumes an :class:`~repro.streaming.source.\
EdgeStream` (initial graph + ordered edge batches) and fits every
snapshot:

* **Snapshot 0** is always a cold fit of the initial graph.
* **Snapshot i > 0** first advances the graph
  (:func:`~repro.graph.stream.apply_edge_batch`) and the carried
  blockmodel (:meth:`~repro.sbm.blockmodel.Blockmodel.apply_edge_delta`
  — the O(|batch|) scatter path, not a recount), then evaluates the
  **drift**: the relative normalized-MDL change of the carried partition
  on the mutated graph. The configured
  :class:`~repro.streaming.drift.DriftPolicy` turns drift into a
  warm-vs-cold decision — a warm refit
  (:meth:`~repro.core.fit_session.FitSession.warm_refit`, narrowed
  golden-section bracket around the carried block count) when the old
  structure still fits, a cold fit when it broke.

Every snapshot's result carries the v7 streaming fields (``refit_mode``,
``drift``, ``nmi_prev`` — consecutive-snapshot stability via
:func:`~repro.metrics.alignment.consecutive_stability`).

Resilience composes with the existing checkpoint layer: each completed
snapshot persists under its index (``RunCheckpointer.save_completed``
with a stream-aware digest) and the in-flight snapshot's search
snapshots into the ``snap_NNN`` child directory — a stream killed
mid-snapshot resumes inside that snapshot's golden-section search,
bit-identically. A fit cut short by SIGINT or the time budget ends the
stream with the snapshots completed so far.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from repro.core.fit_session import FitSession
from repro.core.results import SBPResult
from repro.core.variants import SBPConfig
from repro.graph.stream import EdgeBatch, apply_edge_batch
from repro.metrics.alignment import consecutive_stability
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import normalized_description_length
from repro.streaming.drift import drift_value, get_drift_policy
from repro.streaming.source import EdgeStream
from repro.utils.log import get_logger

__all__ = ["SnapshotReport", "StreamResult", "StreamSession"]

_log = get_logger("streaming.session")


@dataclass(frozen=True)
class SnapshotReport:
    """One snapshot's outcome: the fit plus the batch that produced it."""

    index: int
    edges_added: int
    edges_removed: int
    #: wall-clock of the whole snapshot step (delta + drift + fit);
    #: 0.0 when the snapshot was restored from a checkpoint.
    seconds: float
    result: SBPResult


@dataclass
class StreamResult:
    """Outcome of a full stream run."""

    snapshots: list[SnapshotReport] = field(default_factory=list)
    warm_refits: int = 0
    cold_fits: int = 0
    drift_policy: str = "mdl-ratio"
    drift_threshold: float = 0.0

    @property
    def final(self) -> SBPResult:
        """The last snapshot's fit."""
        if not self.snapshots:
            raise ValueError("empty stream result has no final snapshot")
        return self.snapshots[-1].result

    @property
    def interrupted(self) -> bool:
        return bool(self.snapshots) and self.snapshots[-1].result.interrupted

    def summary_rows(self) -> list[dict[str, object]]:
        """Flat per-snapshot rows for the reporting layer."""
        return [
            {
                "snapshot": snap.index,
                "mode": snap.result.refit_mode,
                "drift": snap.result.drift,
                "nmi_prev": snap.result.nmi_prev,
                "blocks": snap.result.num_blocks,
                "MDL_norm": snap.result.normalized_mdl,
                "E": snap.result.num_edges,
                "+edges": snap.edges_added,
                "-edges": snap.edges_removed,
                "seconds": snap.seconds,
                "sweeps": snap.result.mcmc_sweeps,
            }
            for snap in self.snapshots
        ]


class StreamSession:
    """Fit every snapshot of an edge stream (see module doc).

    Parameters
    ----------
    config:
        Per-snapshot fit configuration (variant, seed, storage, ...).
        The same config drives every snapshot; its checkpoint digest is
        extended with the stream parameters so resumed streams refuse a
        changed policy.
    drift_policy:
        Registered :class:`~repro.streaming.drift.DriftPolicy` name
        deciding warm vs cold per snapshot.
    drift_threshold:
        Threshold handed to the policy (relative normalized-MDL change).
    checkpointer:
        Optional :class:`RunCheckpointer`; completed snapshots persist
        under their index and the in-flight snapshot's search snapshots
        into a ``snap_NNN`` child directory.
    """

    def __init__(
        self,
        config: SBPConfig | None = None,
        *,
        drift_policy: str = "mdl-ratio",
        drift_threshold: float = 0.05,
        checkpointer: RunCheckpointer | None = None,
    ) -> None:
        if drift_threshold < 0.0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {drift_threshold}"
            )
        self.config = config if config is not None else SBPConfig()
        self.policy = get_drift_policy(drift_policy)
        self.drift_threshold = float(drift_threshold)
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------
    def _snapshot_digest(self, config: SBPConfig, index: int) -> str:
        return (
            f"{config_digest(config)}:stream:{self.policy.name}"
            f":{self.drift_threshold!r}:{index}"
        )

    @staticmethod
    def _grown_assignment(
        assignment: np.ndarray, num_vertices: int, num_blocks: int
    ) -> np.ndarray:
        """Extend ``assignment`` to newborn vertices, deterministically.

        New vertices join the largest existing block (lowest id on
        ties) — they arrive with no edges of their own to argue
        otherwise, and the warm refit immediately re-evaluates them.
        """
        grow = num_vertices - assignment.shape[0]
        if grow <= 0:
            return assignment
        sizes = np.bincount(assignment, minlength=num_blocks)
        target = int(np.argmax(sizes))
        return np.concatenate(
            [assignment, np.full(grow, target, dtype=np.int64)]
        )

    # ------------------------------------------------------------------
    def run(self, stream: EdgeStream) -> StreamResult:
        """Fit every snapshot of ``stream``; see the module doc.

        ``config.time_budget`` budgets the *whole stream*: each
        snapshot's fit receives the remaining wall-clock, and an
        exhausted budget stops consuming snapshots (the completed
        prefix is returned; a checkpointed rerun picks up where the
        budget ran out).
        """
        started = time.monotonic()
        out = StreamResult(
            drift_policy=self.policy.name,
            drift_threshold=self.drift_threshold,
        )
        graph = stream.graph
        prev: SBPResult | None = None

        for index in range(stream.num_snapshots):
            step_start = time.monotonic()
            snap_config = self.config
            if self.config.time_budget is not None:
                remaining = max(
                    self.config.time_budget - (step_start - started), 0.0
                )
                if remaining == 0.0 and out.snapshots:
                    _log.info(
                        "stream budget exhausted after %d snapshots",
                        len(out.snapshots),
                    )
                    break
                snap_config = self.config.replace(time_budget=remaining)
            batch: EdgeBatch | None = None
            carried: Blockmodel | None = None
            drift = 0.0
            cold = True
            if index > 0:
                assert prev is not None
                batch = stream.batches[index - 1].normalized()
                new_graph = apply_edge_batch(graph, batch)
                assignment = self._grown_assignment(
                    prev.assignment, new_graph.num_vertices, prev.num_blocks
                )
                if assignment.shape[0] == graph.num_vertices:
                    # No vertex growth: carry the blockmodel through the
                    # O(|batch|) edge-delta scatter path.
                    carried = Blockmodel.from_assignment(
                        graph, assignment, prev.num_blocks,
                        storage=prev.block_storage or self.config.block_storage,
                    )
                    carried.apply_edge_delta(batch)
                else:
                    # Growth snapshots recount against the new graph (the
                    # delta path needs a fixed assignment length).
                    carried = Blockmodel.from_assignment(
                        new_graph, assignment, prev.num_blocks,
                        storage=prev.block_storage or self.config.block_storage,
                    )
                graph = new_graph
                carried_nmdl = normalized_description_length(
                    carried.mdl(graph), graph.num_edges, graph.num_vertices
                )
                drift = drift_value(prev.normalized_mdl, carried_nmdl)
                cold = self.policy.should_cold_fit(drift, self.drift_threshold)

            session = FitSession(
                graph,
                snap_config,
                self.checkpointer.child(f"snap_{index:03d}")
                if self.checkpointer is not None
                else None,
            )
            digest = self._snapshot_digest(session.config, index)
            restored = (
                self.checkpointer.load_completed(index, digest=digest)
                if self.checkpointer is not None
                else None
            )
            if restored is not None:
                result = restored
                seconds = 0.0
                _log.info(
                    "snapshot %d restored from checkpoint (%s, C=%d)",
                    index, result.refit_mode, result.num_blocks,
                )
            else:
                if cold or carried is None:
                    result = session.cold_fit()
                else:
                    result = session.warm_refit(carried)
                nmi_prev = (
                    consecutive_stability(prev.assignment, result.assignment).nmi
                    if prev is not None
                    else -1.0
                )
                result = dc_replace(
                    result,
                    refit_mode="cold" if cold else "warm",
                    drift=drift,
                    nmi_prev=nmi_prev,
                )
                seconds = time.monotonic() - step_start
                if self.checkpointer is not None and not result.interrupted:
                    self.checkpointer.save_completed(
                        index, result, digest=digest
                    )
                _log.info(
                    "snapshot %d: %s fit, drift=%.4f, C=%d, nmi_prev=%.3f "
                    "(%.2fs)",
                    index, result.refit_mode, drift, result.num_blocks,
                    result.nmi_prev, seconds,
                )
            if result.refit_mode == "cold":
                out.cold_fits += 1
            else:
                out.warm_refits += 1
            out.snapshots.append(SnapshotReport(
                index=index,
                edges_added=int(batch.add.shape[0]) if batch is not None else 0,
                edges_removed=(
                    int(batch.remove.shape[0]) if batch is not None else 0
                ),
                seconds=seconds,
                result=result,
            ))
            if result.interrupted:
                _log.info(
                    "stream interrupted at snapshot %d; %d snapshots done",
                    index, len(out.snapshots) - 1,
                )
                break
            prev = result
        return out
