"""Streaming community detection: warm refits along an edge stream."""

from repro.streaming.drift import (
    DriftPolicy,
    available_drift_policies,
    drift_value,
    get_drift_policy,
    register_drift_policy,
)
from repro.streaming.source import (
    EdgeStream,
    StreamSourceSpec,
    available_stream_sources,
    edgelist_dir_stream,
    get_stream_source,
    register_stream_source,
    synthetic_churn_stream,
)
from repro.streaming.session import SnapshotReport, StreamResult, StreamSession

__all__ = [
    "DriftPolicy",
    "drift_value",
    "register_drift_policy",
    "get_drift_policy",
    "available_drift_policies",
    "EdgeStream",
    "StreamSourceSpec",
    "register_stream_source",
    "get_stream_source",
    "available_stream_sources",
    "synthetic_churn_stream",
    "edgelist_dir_stream",
    "SnapshotReport",
    "StreamResult",
    "StreamSession",
]
